// Tests for the allocator control plane (src/net/): framing round-trips
// under arbitrary stream segmentation (property test), latest-wins
// coalescing, the epoll loop, and the loopback integration of N endpoint
// agents against AllocatorService -- whose converged rates must match an
// equivalent in-process core::Allocator run.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <variant>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <thread>

#include "common/ratecode.h"
#include "common/rng.h"
#include "common/wire.h"
#include "core/allocator.h"
#include "flowlet/detector.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/spsc_queue.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "topo/clos.h"

namespace ft::net {
namespace {

using AnyMsg = std::variant<core::FlowletStartMsg, core::FlowletEndMsg,
                            core::RateUpdateMsg, core::TraceMarkMsg,
                            core::HeartbeatMsg>;

// Records every decoded message in order.
struct Collector : MessageSink {
  std::vector<AnyMsg> msgs;
  void on_flowlet_start(const core::FlowletStartMsg& m) override {
    msgs.emplace_back(m);
  }
  void on_flowlet_end(const core::FlowletEndMsg& m) override {
    msgs.emplace_back(m);
  }
  void on_rate_update(const core::RateUpdateMsg& m) override {
    msgs.emplace_back(m);
  }
  void on_trace_mark(const core::TraceMarkMsg& m) override {
    msgs.emplace_back(m);
  }
  void on_heartbeat(const core::HeartbeatMsg& m) override {
    msgs.emplace_back(m);
  }
};

TEST(MessagesSpanTest, TryDecodeMatchesArrayApi) {
  const core::FlowletStartMsg start{0x01020304, 7, 11, 999, 250, 1};
  const auto enc = core::encode(start);
  const auto via_span =
      core::try_decode_flowlet_start(std::span<const std::uint8_t>(enc));
  ASSERT_TRUE(via_span.has_value());
  EXPECT_EQ(*via_span, core::decode_flowlet_start(enc));
}

TEST(MessagesSpanTest, ShortBuffersReturnNullopt) {
  std::vector<std::uint8_t> buf(core::kFlowletStartBytes - 1, 0xFF);
  EXPECT_FALSE(core::try_decode_flowlet_start(buf).has_value());
  buf.resize(core::kFlowletEndBytes - 1);
  EXPECT_FALSE(core::try_decode_flowlet_end(buf).has_value());
  buf.resize(core::kRateUpdateBytes - 1);
  EXPECT_FALSE(core::try_decode_rate_update(buf).has_value());
  buf.assign(core::kTraceMarkBytes - 1, 0xFF);
  EXPECT_FALSE(core::try_decode_trace_mark(buf).has_value());
}

TEST(MessagesSpanTest, TraceMarkRoundTripsAllHopStamps) {
  core::TraceMarkMsg m;
  m.flow_key = 0xDEADBEEF;
  m.trace_id = 0x0123456789ABCDEFull;
  for (std::size_t i = 0; i < core::kTraceHopSlots; ++i) {
    // Exercise sign and the full 64-bit width.
    m.t_ns[i] = static_cast<std::int64_t>(0x7A5A5A5A00000000ull >> i) -
                static_cast<std::int64_t>(i * 3);
  }
  const auto enc = core::encode(m);
  EXPECT_EQ(enc.size(), core::kTraceMarkBytes);
  EXPECT_EQ(core::decode_trace_mark(enc), m);
  const auto via_span =
      core::try_decode_trace_mark(std::span<const std::uint8_t>(enc));
  ASSERT_TRUE(via_span.has_value());
  EXPECT_EQ(*via_span, m);
}

TEST(MessagesSpanTest, HeartbeatRoundTripsAndRejectsShortBuffers) {
  const core::HeartbeatMsg m{std::int64_t{-1234567890123456789},
                             std::uint32_t{250'000}};
  const auto enc = core::encode(m);
  EXPECT_EQ(enc.size(), core::kHeartbeatBytes);
  EXPECT_EQ(core::decode_heartbeat(enc), m);
  const auto via_span =
      core::try_decode_heartbeat(std::span<const std::uint8_t>(enc));
  ASSERT_TRUE(via_span.has_value());
  EXPECT_EQ(*via_span, m);
  std::vector<std::uint8_t> shrt(core::kHeartbeatBytes - 1, 0xFF);
  EXPECT_FALSE(core::try_decode_heartbeat(shrt).has_value());
}

TEST(MessagesSpanTest, ExtraTrailingBytesIgnored) {
  const core::RateUpdateMsg upd{42, 1234};
  const auto enc = core::encode(upd);
  std::vector<std::uint8_t> padded(enc.begin(), enc.end());
  padded.resize(padded.size() + 13, 0xAB);
  const auto m = core::try_decode_rate_update(padded);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, upd);
}

// Property test (satellite): random message sequences survive
// encode -> frame -> split at arbitrary byte boundaries -> reassemble ->
// decode with identical content and order.
TEST(FramePropertyTest, RoundTripUnderArbitrarySegmentation) {
  Rng rng(0xF10771E5);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random batch sequence across several frames. Rate updates
    // use distinct keys so coalescing does not change the sequence (it
    // is exercised separately below).
    std::vector<AnyMsg> sent;
    std::vector<std::uint8_t> stream;
    FrameWriter writer;
    std::uint32_t next_key = 1;
    const int frames = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < frames; ++f) {
      const int records = 1 + static_cast<int>(rng.below(40));
      for (int r = 0; r < records; ++r) {
        switch (rng.below(5)) {
          case 0: {
            core::FlowletStartMsg m;
            m.flow_key = next_key++;
            m.src_host = static_cast<std::uint16_t>(rng.next());
            m.dst_host = static_cast<std::uint16_t>(rng.next());
            m.size_hint_bytes = static_cast<std::uint32_t>(rng.next());
            m.weight_milli = static_cast<std::uint16_t>(rng.next());
            m.flags = static_cast<std::uint16_t>(rng.next());
            writer.add(m);
            sent.emplace_back(m);
            break;
          }
          case 1: {
            const core::FlowletEndMsg m{next_key++};
            writer.add(m);
            sent.emplace_back(m);
            break;
          }
          case 2: {
            const core::RateUpdateMsg m{
                next_key++, static_cast<std::uint16_t>(rng.next())};
            writer.add(m);
            sent.emplace_back(m);
            break;
          }
          case 3: {
            core::TraceMarkMsg m;
            m.flow_key = next_key++;
            m.trace_id = rng.next();
            for (auto& t : m.t_ns) {
              t = static_cast<std::int64_t>(rng.next());
            }
            writer.add(m);
            sent.emplace_back(m);
            break;
          }
          default: {
            const core::HeartbeatMsg m{
                static_cast<std::int64_t>(rng.next()),
                static_cast<std::uint32_t>(rng.next())};
            writer.add(m);
            sent.emplace_back(m);
            break;
          }
        }
      }
      ASSERT_GT(writer.flush(stream), 0u);
    }

    // Feed the stream in chunks split at arbitrary boundaries.
    Collector got;
    FrameParser parser;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          1 + rng.below(23), stream.size() - off);
      ASSERT_TRUE(parser.feed({stream.data() + off, chunk}, got));
      off += chunk;
    }
    ASSERT_EQ(got.msgs.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got.msgs[i], sent[i]) << "trial " << trial << " msg " << i;
    }
  }
}

TEST(FrameWriterTest, RateUpdatesCoalesceLatestWinsPerFlow) {
  FrameWriter writer;
  writer.add(core::RateUpdateMsg{1, 100});
  writer.add(core::RateUpdateMsg{2, 200});
  writer.add(core::RateUpdateMsg{1, 111});  // supersedes in place
  writer.add(core::RateUpdateMsg{1, 122});
  std::vector<std::uint8_t> stream;
  writer.flush(stream);

  Collector got;
  FrameParser parser;
  ASSERT_TRUE(parser.feed(stream, got));
  ASSERT_EQ(got.msgs.size(), 2u);
  EXPECT_EQ(got.msgs[0], AnyMsg(core::RateUpdateMsg{1, 122}));
  EXPECT_EQ(got.msgs[1], AnyMsg(core::RateUpdateMsg{2, 200}));
  EXPECT_EQ(writer.stats().coalesced_updates, 2u);
  EXPECT_EQ(writer.stats().records, 2u);
}

TEST(FrameWriterTest, CoalescingStopsAtFlowletEnd) {
  // rate(1), end(1), rate(1): the second update must NOT be folded into
  // the record that precedes the end, or the endpoint would drop it.
  FrameWriter writer;
  writer.add(core::RateUpdateMsg{1, 100});
  writer.add(core::FlowletEndMsg{1});
  writer.add(core::RateUpdateMsg{1, 300});
  std::vector<std::uint8_t> stream;
  writer.flush(stream);

  Collector got;
  FrameParser parser;
  ASSERT_TRUE(parser.feed(stream, got));
  ASSERT_EQ(got.msgs.size(), 3u);
  EXPECT_EQ(got.msgs[0], AnyMsg(core::RateUpdateMsg{1, 100}));
  EXPECT_EQ(got.msgs[1], AnyMsg(core::FlowletEndMsg{1}));
  EXPECT_EQ(got.msgs[2], AnyMsg(core::RateUpdateMsg{1, 300}));
}

TEST(FrameWriterTest, WireAccountingUsesTcpOverheads) {
  FrameWriter writer;
  writer.add(core::FlowletEndMsg{9});
  std::vector<std::uint8_t> stream;
  const std::size_t framed = writer.flush(stream);
  EXPECT_EQ(framed, kFrameHeaderBytes + kEndRecordBytes);
  EXPECT_EQ(writer.stats().wire_bytes,
            wire_bytes_tcp_stream(static_cast<std::int64_t>(framed)));
}

TEST(FrameParserTest, RejectsMalformedStreams) {
  {  // unknown record tag
    FrameParser parser;
    Collector sink;
    const std::vector<std::uint8_t> bad = {1, 0, 0, 0, 0x7F};
    EXPECT_FALSE(parser.feed(bad, sink));
    EXPECT_FALSE(parser.feed({}, sink));  // stays corrupt
  }
  {  // oversized frame announcement
    FrameParser parser(1024);
    Collector sink;
    const std::vector<std::uint8_t> bad = {0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_FALSE(parser.feed(bad, sink));
  }
  {  // truncated record inside a complete frame
    FrameParser parser;
    Collector sink;
    std::vector<std::uint8_t> bad = {2, 0, 0, 0,
                                     static_cast<std::uint8_t>(
                                         MsgType::kFlowletEnd),
                                     0x01};
    EXPECT_FALSE(parser.feed(bad, sink));
  }
}

// Fuzz/property test (satellite): a parser fed corrupted byte streams --
// truncations, oversized length fields, bit flips, random garbage --
// split at arbitrary chunk boundaries must only ever (a) keep decoding
// valid messages or (b) report the stream malformed and stay corrupt.
// Never a crash, a hang, or a resurrection after corruption. Runs under
// the ASan/UBSan CI lane, which is where the "never a crash" half bites.
TEST(FrameParserFuzzTest, CorruptedStreamsNeverCrashAndStayCorrupt) {
  Rng rng(0xBADC0DE5);
  for (int trial = 0; trial < 300; ++trial) {
    // A valid multi-frame stream of mixed records...
    FrameWriter writer;
    std::vector<std::uint8_t> stream;
    std::uint32_t key = 1;
    const int frames = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < frames; ++f) {
      const int records = 1 + static_cast<int>(rng.below(12));
      for (int r = 0; r < records; ++r) {
        switch (rng.below(4)) {
          case 0: {
            core::FlowletStartMsg m;
            m.flow_key = key++;
            writer.add(m);
            break;
          }
          case 1:
            writer.add(core::FlowletEndMsg{key++});
            break;
          case 2:
            writer.add(core::RateUpdateMsg{
                key++, static_cast<std::uint16_t>(rng.next())});
            break;
          default:
            writer.add(core::HeartbeatMsg{
                static_cast<std::int64_t>(rng.next()),
                static_cast<std::uint32_t>(rng.next())});
            break;
        }
      }
      writer.flush(stream);
    }

    // ...then one of four corruptions.
    switch (rng.below(4)) {
      case 0:  // truncate mid-stream (not malformed: just incomplete)
        stream.resize(rng.below(stream.size()) + 1);
        break;
      case 1: {  // flip a bit anywhere (header, tag, or body)
        const std::size_t at = rng.below(stream.size());
        stream[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      }
      case 2: {  // oversized/zero length field on the first header
        const std::uint32_t bogus =
            rng.below(2) == 0 ? 0u : 0x7FFFFFFFu;
        stream[0] = static_cast<std::uint8_t>(bogus);
        stream[1] = static_cast<std::uint8_t>(bogus >> 8);
        stream[2] = static_cast<std::uint8_t>(bogus >> 16);
        stream[3] = static_cast<std::uint8_t>(bogus >> 24);
        break;
      }
      default: {  // splice random garbage into the middle
        const std::size_t at = rng.below(stream.size());
        std::vector<std::uint8_t> junk(1 + rng.below(64));
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
        stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(at),
                      junk.begin(), junk.end());
        break;
      }
    }

    // Feed in random chunks. Whatever happens, it terminates, and a
    // false return is sticky forever after.
    Collector sink;
    FrameParser parser;
    bool corrupted = false;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          1 + rng.below(37), stream.size() - off);
      const bool ok = parser.feed({stream.data() + off, chunk}, sink);
      if (corrupted) {
        ASSERT_FALSE(ok) << "parser resurrected after corruption, trial "
                         << trial;
      }
      corrupted = corrupted || !ok;
      off += chunk;
    }
    if (corrupted) {
      EXPECT_FALSE(parser.feed({}, sink));
      Collector sink2;
      EXPECT_FALSE(parser.feed(stream, sink2));
      EXPECT_TRUE(sink2.msgs.empty());
    }
  }
}

TEST(SpscQueueTest, SingleThreadedFullAndEmpty) {
  SpscQueue<int> q(4);  // rounds up to capacity() usable slots
  EXPECT_TRUE(q.empty());
  int v = 0;
  EXPECT_FALSE(q.try_pop(v));
  std::size_t pushed = 0;
  while (q.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, q.capacity());
  EXPECT_FALSE(q.try_push(999));
  for (std::size_t i = 0; i < pushed; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, static_cast<int>(i));  // FIFO
  }
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueueTest, CrossThreadTransferPreservesOrder) {
  SpscQueue<std::uint64_t> q(1 << 10);
  constexpr std::uint64_t kCount = 200'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t sum = 0;
  while (expect < kCount) {
    std::uint64_t v;
    if (!q.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);
    sum += v;
    ++expect;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(EpollLoopTest, TimersFireInOrderAndPeriodicsRearm) {
  EpollLoop loop;
  std::vector<int> order;
  loop.add_timer(2'000, [&] { order.push_back(2); });
  loop.add_timer(0, [&] { order.push_back(1); });
  int periodic_fires = 0;
  EpollLoop::TimerId pid = 0;
  pid = loop.add_periodic(1'000, [&] {
    if (++periodic_fires == 3) loop.cancel_timer(pid);
  });
  const std::int64_t deadline = EpollLoop::now_us() + 1'000'000;
  while ((order.size() < 2 || periodic_fires < 3) &&
         EpollLoop::now_us() < deadline) {
    loop.run_once(10'000);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(periodic_fires, 3);
}

TEST(EpollLoopTest, DispatchesFdReadiness) {
  EpollLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  bool readable = false;
  loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t ev) {
    readable = (ev & EPOLLIN) != 0;
    char c;
    ASSERT_EQ(::read(fds[0], &c, 1), 1);
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run_once(100'000);
  EXPECT_TRUE(readable);
  loop.del_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------
// Loopback integration: N endpoint agents against the service must end
// up with the same rates as the equivalent in-process allocator run.
// Everything runs single-threaded for determinism: the test interleaves
// service rounds (manual run_allocation_round), the epoll loop, and
// agent polls.

struct Flow {
  std::uint32_t key;
  std::uint16_t src;
  std::uint16_t dst;
};

class LoopbackTest : public ::testing::Test {
 protected:
  static topo::ClosConfig small_clos() {
    topo::ClosConfig cfg;
    cfg.racks = 4;
    cfg.servers_per_rack = 4;
    cfg.spines = 2;
    cfg.fabric_link_bps = 20e9;
    return cfg;
  }

  static std::vector<double> caps_of(const topo::ClosTopology& clos) {
    std::vector<double> caps;
    for (const auto& l : clos.graph().links()) {
      caps.push_back(l.capacity_bps);
    }
    return caps;
  }

  static core::AllocatorConfig alloc_cfg() {
    core::AllocatorConfig cfg;
    // Threshold 0 so every rate change is notified: the agents' final
    // rates then equal the service's quantized allocation exactly.
    cfg.threshold = 0.0;
    return cfg;
  }

  void pump(EpollLoop& loop, std::vector<EndpointAgent*>& agents) {
    loop.run_once(0);
    for (auto* a : agents) ASSERT_TRUE(a->poll());
    loop.run_once(0);
  }
};

TEST_F(LoopbackTest, AgentsMatchInProcessAllocator) {
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;                // ephemeral
  scfg.iteration_period_us = 0;     // rounds driven manually
  AllocatorService svc(loop, alloc, clos, scfg);
  ASSERT_GT(svc.tcp_port(), 0);

  // 4 agents x 8 flows over a fixed pattern of host pairs.
  constexpr int kAgents = 4;
  constexpr int kFlowsPerAgent = 8;
  Rng rng(1234);
  const int hosts = clos.num_hosts();
  std::vector<std::vector<Flow>> flows(kAgents);
  std::uint32_t key = 1;
  for (int a = 0; a < kAgents; ++a) {
    for (int f = 0; f < kFlowsPerAgent; ++f) {
      const auto src = static_cast<std::uint16_t>(rng.below(hosts));
      auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
      if (dst >= src) ++dst;
      flows[a].push_back({key++, src, dst});
    }
  }

  std::vector<std::unique_ptr<EndpointAgent>> agents;
  std::vector<EndpointAgent*> raw;
  for (int a = 0; a < kAgents; ++a) {
    agents.push_back(std::make_unique<EndpointAgent>());
    ASSERT_TRUE(agents.back()->connect_tcp("127.0.0.1", svc.tcp_port()));
    raw.push_back(agents.back().get());
  }
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      ASSERT_TRUE(agents[a]->flowlet_start(fl.key, fl.src, fl.dst));
    }
    agents[a]->flush();
  }

  // Let the service accept and register everything.
  const std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() <
             static_cast<std::size_t>(kAgents * kFlowsPerAgent) &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(),
            static_cast<std::size_t>(kAgents * kFlowsPerAgent));

  constexpr int kIters = 300;
  for (int i = 0; i < kIters; ++i) {
    svc.run_allocation_round();
    pump(loop, raw);
  }
  // Drain any updates still in flight.
  for (int i = 0; i < 50; ++i) pump(loop, raw);

  // Reference: identical flows through an in-process allocator (same
  // route selection: host_path keyed by flow key, as the service does).
  core::Allocator ref(caps_of(clos), alloc_cfg());
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      const auto p =
          clos.host_path(clos.host(fl.src), clos.host(fl.dst), fl.key);
      const std::vector<LinkId> route(p.begin(), p.end());
      ASSERT_TRUE(ref.flowlet_start(fl.key, route));
    }
  }
  std::vector<core::RateUpdate> sink;
  for (int i = 0; i < kIters; ++i) {
    sink.clear();
    ref.run_iteration(sink);
  }

  // Every agent-side rate matches the reference within +-1 rate-code
  // quantum (the codes themselves should be within 1 of each other).
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      const std::uint16_t got = agents[a]->rate_code(fl.key);
      const std::uint16_t want = encode_rate(ref.notified_rate(fl.key));
      EXPECT_NEAR(got, want, 1)
          << "agent " << a << " flow " << fl.key << " got "
          << agents[a]->rate_bps(fl.key) << " bps, want "
          << ref.notified_rate(fl.key) << " bps";
      EXPECT_GT(agents[a]->rate_bps(fl.key), 0.0);
    }
  }
  EXPECT_EQ(svc.stats().protocol_errors, 0u);
  EXPECT_EQ(svc.stats().rejected_starts, 0u);
}

TEST_F(LoopbackTest, UnixSocketFlowletLifecycleAndIdleGap) {
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.unix_path = "/tmp/flowtune_net_test.sock";
  scfg.iteration_period_us = 0;
  AllocatorService svc(loop, alloc, clos, scfg);

  AgentConfig acfg;
  acfg.idle_gap_us = 30'000;
  EndpointAgent agent(acfg);
  ASSERT_TRUE(agent.connect_unix(scfg.unix_path));
  std::vector<EndpointAgent*> raw = {&agent};

  ASSERT_TRUE(agent.flowlet_start(7, 0, 5));
  ASSERT_TRUE(agent.flowlet_start(8, 1, 9));
  agent.flush();
  std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < 2 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), 2u);

  svc.run_allocation_round();
  pump(loop, raw);
  pump(loop, raw);
  EXPECT_GT(agent.rate_bps(7), 0.0);
  EXPECT_GT(agent.rate_bps(8), 0.0);

  // Keep flow 7 alive by touching it; flow 8 idles out after the gap.
  deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() > 1 &&
         EpollLoop::now_us() < deadline) {
    agent.touch(7);
    pump(loop, raw);
  }
  EXPECT_EQ(alloc.num_active_flowlets(), 1u);
  EXPECT_TRUE(alloc.is_active(7));
  EXPECT_FALSE(alloc.is_active(8));
  EXPECT_EQ(agent.stats().idle_ends, 1u);
  EXPECT_TRUE(agent.is_active(7));
  EXPECT_FALSE(agent.is_active(8));

  // Disconnect ends the remaining flowlet server-side.
  agent.disconnect();
  deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() > 0 &&
         EpollLoop::now_us() < deadline) {
    loop.run_once(1'000);
  }
  EXPECT_EQ(alloc.num_active_flowlets(), 0u);
  EXPECT_EQ(svc.stats().flowlet_ends, 2u);
}

TEST_F(LoopbackTest, DetectorDrivenAgentAutoStartsAndEnds) {
  // The agent owns a FlowDyn-style dynamic detector and no flowlet is
  // ever registered explicitly: observe_packet() drives the whole
  // lifecycle -- auto start on the first packet, auto end after the
  // adaptive gap, auto re-start on the next burst.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  AllocatorService svc(loop, alloc, clos, scfg);

  flowlet::DynamicGapConfig dcfg;
  // Floors sized for a real-time test: the gap settles at min_gap.
  dcfg.min_gap = 40 * kMillisecond;
  dcfg.initial_gap = 40 * kMillisecond;
  dcfg.max_gap = kSecond;
  EndpointAgent agent(
      AgentConfig{},
      std::make_unique<flowlet::DynamicGapDetector>(dcfg));
  ASSERT_NE(agent.detector(), nullptr);
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};

  agent.observe_packet(99, 2, 9, 1500);
  std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < 1 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), 1u);
  EXPECT_TRUE(agent.is_active(99));
  EXPECT_EQ(agent.stats().starts_sent, 1u);

  // Rates flow to the detected flowlet like any registered one.
  svc.run_allocation_round();
  pump(loop, raw);
  pump(loop, raw);
  EXPECT_GT(agent.rate_bps(99), 0.0);

  // Silence: the detector's idle sweep ends it after the gap.
  deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() > 0 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  EXPECT_EQ(alloc.num_active_flowlets(), 0u);
  EXPECT_FALSE(agent.is_active(99));
  EXPECT_EQ(agent.stats().ends_sent, 1u);
  EXPECT_EQ(agent.stats().idle_ends, 1u);

  // The next burst on the same key re-registers automatically.
  agent.observe_packet(99, 2, 9, 1500);
  deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < 1 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  EXPECT_EQ(alloc.num_active_flowlets(), 1u);
  EXPECT_EQ(agent.stats().starts_sent, 2u);
  EXPECT_EQ(svc.stats().flowlet_starts, 2u);
  EXPECT_EQ(svc.stats().protocol_errors, 0u);
}

TEST_F(LoopbackTest, BigRoundsSplitIntoChunkedFrames) {
  // An endpoint owning many flows must receive its round as several
  // frames cut at flush_chunk_bytes, never one oversized frame (which
  // would trip the kMaxFramePayload invariant on a big deployment).
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.flush_chunk_bytes = 64;  // ~9 rate records per frame
  AllocatorService svc(loop, alloc, clos, scfg);

  EndpointAgent agent;
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};

  constexpr int kFlows = 24;
  for (std::uint32_t key = 1; key <= kFlows; ++key) {
    const auto src = static_cast<std::uint16_t>(key % 16);
    const auto dst = static_cast<std::uint16_t>((key + 7) % 16);
    ASSERT_TRUE(agent.flowlet_start(key, src, dst));
  }
  agent.flush();
  const std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < kFlows &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), static_cast<std::size_t>(kFlows));

  svc.run_allocation_round();
  // First round notifies all 24 flows: 24 * 7 B of records across
  // 64-byte chunks is at least 3 frames.
  EXPECT_GE(svc.stats().frames_out, 3u);
  for (int i = 0; i < 20; ++i) pump(loop, raw);
  for (std::uint32_t key = 1; key <= kFlows; ++key) {
    EXPECT_GT(agent.rate_bps(key), 0.0) << "flow " << key;
  }
}

TEST_F(LoopbackTest, ServiceSurvivesChurn) {
  // Regression for the pre-daemon churn loop, which tracked raw
  // FlowIndex slots across remove_flow and could hit recycled slots:
  // keys, not slots, are the contract here.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  AllocatorService svc(loop, alloc, clos, scfg);

  EndpointAgent agent;
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};

  Rng rng(99);
  const int hosts = clos.num_hosts();
  std::vector<std::uint32_t> live;
  std::uint32_t next_key = 1;
  const auto start_one = [&] {
    const auto src = static_cast<std::uint16_t>(rng.below(hosts));
    auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    ASSERT_TRUE(agent.flowlet_start(next_key, src, dst));
    live.push_back(next_key++);
  };
  for (int i = 0; i < 32; ++i) start_one();
  agent.flush();

  for (int round = 0; round < 200; ++round) {
    // Churn a few flowlets per round through slot reuse.
    for (int e = 0; e < 2 && !live.empty(); ++e) {
      const auto pick = rng.below(live.size());
      ASSERT_TRUE(agent.flowlet_end(live[pick]));
      live[pick] = live.back();
      live.pop_back();
      start_one();
    }
    agent.flush();
    pump(loop, raw);
    svc.run_allocation_round();
    pump(loop, raw);
  }
  for (int i = 0; i < 50; ++i) pump(loop, raw);

  EXPECT_EQ(alloc.num_active_flowlets(), live.size());
  for (const std::uint32_t key : live) EXPECT_TRUE(alloc.is_active(key));
  EXPECT_EQ(svc.stats().protocol_errors, 0u);
  EXPECT_EQ(svc.stats().unknown_ends, 0u);
  EXPECT_EQ(svc.stats().rejected_starts, 0u);
  // Rates kept flowing to the surviving flowlets.
  std::size_t with_rate = 0;
  for (const std::uint32_t key : live) {
    if (agent.rate_bps(key) > 0.0) ++with_rate;
  }
  EXPECT_GT(with_rate, live.size() / 2);
}

TEST_F(LoopbackTest, StalledReaderDroppedAtMaxOutboxBytes) {
  // Satellite coverage: a peer that stops reading must be closed once
  // max_outbox_bytes of output is buffered for it -- with its flowlets
  // ended -- while the flush chunking keeps every emitted frame at or
  // under flush_chunk_bytes on the way there. A healthy agent sharing
  // the service must ride through undisturbed.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.flush_chunk_bytes = 256;     // many small frames per round
  scfg.max_outbox_bytes = 4 * 1024;  // drop a stalled peer quickly
  scfg.send_buffer_bytes = 4 * 1024;  // keep kernel buffering bounded
  AllocatorService svc(loop, alloc, clos, scfg);

  EndpointAgent healthy;
  ASSERT_TRUE(healthy.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&healthy};
  for (std::uint32_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(healthy.flowlet_start(
        key, static_cast<std::uint16_t>(key % 16),
        static_cast<std::uint16_t>((key + 5) % 16)));
  }
  healthy.flush();

  // The stalled peer: a raw socket that registers many flows and then
  // never reads a byte. A small receive buffer keeps the TCP window
  // from absorbing rounds of updates.
  const int stalled = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(stalled, 0);
  const int rcvbuf = 2 * 1024;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(svc.tcp_port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr),
            0);
  constexpr std::uint32_t kStalledFlows = 150;
  {
    FrameWriter w;
    for (std::uint32_t i = 0; i < kStalledFlows; ++i) {
      core::FlowletStartMsg m;
      m.flow_key = 1000 + i;
      m.src_host = static_cast<std::uint16_t>(i % 16);
      m.dst_host = static_cast<std::uint16_t>((i + 3) % 16);
      w.add(m);
    }
    std::vector<std::uint8_t> bytes;
    w.flush(bytes);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(stalled, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::int64_t deadline = EpollLoop::now_us() + 5'000'000;
  while (alloc.num_active_flowlets() < kStalledFlows + 8 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), kStalledFlows + 8u);
  ASSERT_EQ(svc.num_connections(), 2u);

  // Rounds keep emitting updates while rates converge; the stalled
  // peer's outbox grows once its socket stops accepting bytes, and the
  // service must cut it loose -- ending all its flowlets -- without
  // disturbing the healthy agent.
  deadline = EpollLoop::now_us() + 10'000'000;
  while (svc.stats().closed == 0 && EpollLoop::now_us() < deadline) {
    svc.run_allocation_round();
    pump(loop, raw);
  }
  EXPECT_EQ(svc.stats().closed, 1u);
  EXPECT_EQ(svc.num_connections(), 1u);
  EXPECT_EQ(alloc.num_active_flowlets(), 8u);
  for (std::uint32_t i = 0; i < kStalledFlows; ++i) {
    EXPECT_FALSE(alloc.is_active(1000 + i));
  }
  for (int i = 0; i < 10; ++i) pump(loop, raw);
  for (std::uint32_t key = 1; key <= 8; ++key) {
    EXPECT_GT(healthy.rate_bps(key), 0.0) << "healthy flow " << key;
  }
  // Chunking: rounds touching 150 stalled flows (~7 B per record) were
  // cut into <= 256 B frames, so far more frames than rounds went out.
  const auto s = svc.stats();
  EXPECT_GT(s.frames_out, s.iterations);
  EXPECT_EQ(s.protocol_errors, 0u);
  ::close(stalled);
}

// ---------------------------------------------------------------------
// Sharded service: same protocol, N I/O shard threads behind one
// listener, flowlet lifecycle funneled to the allocation thread over
// SPSC rings. The tests drive allocation rounds from the main thread
// (manual mode) while shard threads run their own loops.

class ShardedLoopbackTest : public LoopbackTest {
 protected:
  // Waits until `cond` holds, pumping the caller loop and the agents.
  template <class Cond>
  bool pump_until(EpollLoop& loop, std::vector<EndpointAgent*>& agents,
                  Cond cond, std::int64_t budget_us = 5'000'000) {
    const std::int64_t deadline = EpollLoop::now_us() + budget_us;
    while (!cond()) {
      if (EpollLoop::now_us() > deadline) return false;
      loop.run_once(1'000);
      for (auto* a : agents) {
        if (!a->poll()) return false;
      }
    }
    return true;
  }
};

TEST_F(ShardedLoopbackTest, AgentsAcrossShardsMatchInProcessAllocator) {
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;  // rounds driven manually below
  scfg.num_shards = 2;
  AllocatorService svc(loop, alloc, clos, scfg);
  ASSERT_EQ(svc.num_shards(), 2);

  constexpr int kAgents = 4;  // two connections per shard
  constexpr int kFlowsPerAgent = 8;
  Rng rng(77);
  const int hosts = clos.num_hosts();
  std::vector<std::vector<Flow>> flows(kAgents);
  std::uint32_t key = 1;
  for (int a = 0; a < kAgents; ++a) {
    for (int f = 0; f < kFlowsPerAgent; ++f) {
      const auto src = static_cast<std::uint16_t>(rng.below(hosts));
      auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
      if (dst >= src) ++dst;
      flows[a].push_back({key++, src, dst});
    }
  }

  std::vector<std::unique_ptr<EndpointAgent>> agents;
  std::vector<EndpointAgent*> raw;
  for (int a = 0; a < kAgents; ++a) {
    agents.push_back(std::make_unique<EndpointAgent>());
    ASSERT_TRUE(agents.back()->connect_tcp("127.0.0.1", svc.tcp_port()));
    raw.push_back(agents.back().get());
  }
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      ASSERT_TRUE(agents[a]->flowlet_start(fl.key, fl.src, fl.dst));
    }
    agents[a]->flush();
  }

  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return alloc.num_active_flowlets() ==
           static_cast<std::size_t>(kAgents * kFlowsPerAgent);
  }));

  constexpr int kIters = 400;
  for (int i = 0; i < kIters; ++i) {
    svc.run_allocation_round();
    loop.run_once(0);
    for (auto* a : raw) ASSERT_TRUE(a->poll());
  }
  // Drain in-flight updates.
  for (int i = 0; i < 100; ++i) {
    loop.run_once(1'000);
    for (auto* a : raw) ASSERT_TRUE(a->poll());
  }

  // Reference: identical flows through an in-process allocator. The
  // sharded service registers flows in drain order, but NED converges
  // to the same optimum regardless of registration order.
  core::Allocator ref(caps_of(clos), alloc_cfg());
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      const auto p =
          clos.host_path(clos.host(fl.src), clos.host(fl.dst), fl.key);
      const std::vector<LinkId> route(p.begin(), p.end());
      ASSERT_TRUE(ref.flowlet_start(fl.key, route));
    }
  }
  std::vector<core::RateUpdate> sink;
  for (int i = 0; i < kIters; ++i) {
    sink.clear();
    ref.run_iteration(sink);
  }

  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      const std::uint16_t got = agents[a]->rate_code(fl.key);
      const std::uint16_t want = encode_rate(ref.notified_rate(fl.key));
      EXPECT_NEAR(got, want, 2)
          << "agent " << a << " flow " << fl.key << " got "
          << agents[a]->rate_bps(fl.key) << " bps, want "
          << ref.notified_rate(fl.key) << " bps";
      EXPECT_GT(agents[a]->rate_bps(fl.key), 0.0);
    }
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_EQ(s.rejected_starts, 0u);
  EXPECT_EQ(s.queue_drops, 0u);
  EXPECT_EQ(s.flowlet_starts,
            static_cast<std::uint64_t>(kAgents * kFlowsPerAgent));
  EXPECT_FALSE(svc.round_latency_us().empty());
}

TEST_F(ShardedLoopbackTest, ChurnAndDisconnectAcrossShards) {
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = 3;
  AllocatorService svc(loop, alloc, clos, scfg);

  constexpr int kAgents = 3;
  std::vector<std::unique_ptr<EndpointAgent>> agents;
  std::vector<EndpointAgent*> raw;
  for (int a = 0; a < kAgents; ++a) {
    agents.push_back(std::make_unique<EndpointAgent>());
    ASSERT_TRUE(agents.back()->connect_tcp("127.0.0.1", svc.tcp_port()));
    raw.push_back(agents.back().get());
  }

  Rng rng(5150);
  const int hosts = clos.num_hosts();
  std::vector<std::vector<std::uint32_t>> live(kAgents);
  std::uint32_t next_key = 1;
  const auto start_one = [&](int a) {
    const auto src = static_cast<std::uint16_t>(rng.below(hosts));
    auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    ASSERT_TRUE(agents[a]->flowlet_start(next_key, src, dst));
    live[a].push_back(next_key++);
  };
  for (int a = 0; a < kAgents; ++a) {
    for (int i = 0; i < 16; ++i) start_one(a);
    agents[a]->flush();
  }

  for (int round = 0; round < 150; ++round) {
    for (int a = 0; a < kAgents; ++a) {
      for (int e = 0; e < 2 && !live[a].empty(); ++e) {
        const auto pick = rng.below(live[a].size());
        ASSERT_TRUE(agents[a]->flowlet_end(live[a][pick]));
        live[a][pick] = live[a].back();
        live[a].pop_back();
        start_one(a);
      }
      agents[a]->flush();
    }
    loop.run_once(0);
    svc.run_allocation_round();
    for (auto* ag : raw) ASSERT_TRUE(ag->poll());
  }

  // Everything the agents think is live must end up live in the
  // allocator once the rings quiesce. The count alone can match
  // transiently while (end, start) pairs are still in flight, so wait
  // for the exact key set.
  std::size_t want = 0;
  for (const auto& l : live) want += l.size();
  const auto all_live_active = [&] {
    if (alloc.num_active_flowlets() != want) return false;
    for (const auto& l : live) {
      for (const std::uint32_t k : l) {
        if (!alloc.is_active(k)) return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return all_live_active();
  }));

  // Disconnecting one agent ends exactly its flows, service-side.
  const std::size_t dropped = live[0].size();
  agents[0]->disconnect();
  std::vector<EndpointAgent*> still = {raw[1], raw[2]};
  ASSERT_TRUE(pump_until(loop, still, [&] {
    return alloc.num_active_flowlets() == want - dropped;
  }));
  for (const std::uint32_t k : live[1]) EXPECT_TRUE(alloc.is_active(k));
  for (const std::uint32_t k : live[0]) EXPECT_FALSE(alloc.is_active(k));

  const auto s = svc.stats();
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_EQ(s.unknown_ends, 0u);
  EXPECT_EQ(s.rejected_starts, 0u);
  EXPECT_EQ(s.queue_drops, 0u);
}

TEST_F(ShardedLoopbackTest, CrossShardDuplicateKeyRejected) {
  // Two agents on different shards claim the same flow key: the
  // allocation thread is the authority, so exactly one registration
  // survives and the loser's shard entry is rolled back by kReject.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = 2;
  AllocatorService svc(loop, alloc, clos, scfg);

  EndpointAgent a0;
  EndpointAgent a1;
  ASSERT_TRUE(a0.connect_tcp("127.0.0.1", svc.tcp_port()));
  ASSERT_TRUE(a1.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&a0, &a1};

  ASSERT_TRUE(a0.flowlet_start(42, 0, 5));
  ASSERT_TRUE(a1.flowlet_start(42, 1, 9));  // same key, other conn
  a0.flush();
  a1.flush();

  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return svc.stats().rejected_starts >= 1 &&
           alloc.num_active_flowlets() == 1;
  }));
  EXPECT_EQ(alloc.num_active_flowlets(), 1u);
  EXPECT_EQ(svc.stats().rejected_starts, 1u);
  EXPECT_TRUE(alloc.is_active(42));
}

TEST_F(ShardedLoopbackTest, SampledStartProducesCompleteSevenHopSpan) {
  // End-to-end trace propagation through the sharded service: a sampled
  // flowlet_start (traced flag + TraceMarkMsg in the same batch) must
  // come back on the flow's first rate update with all six wire hops
  // stamped, in causal order, and land e2e.* histograms in the agent's
  // registry.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = 2;
  AllocatorService svc(loop, alloc, clos, scfg);

  obs::MetricsRegistry reg;
  AgentConfig acfg;
  acfg.metrics = &reg;
  acfg.trace_sample_every = 1;  // every start is sampled
  EndpointAgent agent(acfg);
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};

  ASSERT_TRUE(agent.flowlet_start(7, 0, 5));
  ASSERT_TRUE(agent.flowlet_start(8, 1, 9));
  agent.flush();
  EXPECT_EQ(agent.stats().traces_sent, 2u);

  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return agent.stats().traces_completed >= 2;
  }));

  // The echoed mark carries the six wire hops; the seventh (agent
  // receive) is the local stamp. Hops 1..5 are on the service clock and
  // the loopback run shares one host, so the whole chain is ordered.
  const EndpointAgent::TraceResult& tr = agent.last_trace();
  EXPECT_NE(tr.mark.trace_id, 0u);
  EXPECT_TRUE(tr.mark.flow_key == 7u || tr.mark.flow_key == 8u);
  const auto& t = tr.mark.t_ns;
  EXPECT_GT(t[core::kHopAgentSend], 0);
  EXPECT_GT(t[core::kHopShardIngest], 0);
  EXPECT_LE(t[core::kHopShardIngest], t[core::kHopRoundPickup]);
  EXPECT_LE(t[core::kHopRoundPickup], t[core::kHopSolveDone]);
  EXPECT_LE(t[core::kHopSolveDone], t[core::kHopEmitDone]);
  EXPECT_LE(t[core::kHopEmitDone], t[core::kHopFanoutWrite]);
  EXPECT_GE(tr.t_receive_ns, t[core::kHopAgentSend]);
  EXPECT_GE(tr.t_receive_ns, t[core::kHopFanoutWrite]);

  // Span histograms recorded one sample per completed trace.
  EXPECT_EQ(reg.histo("e2e.update_us").snapshot().count, 2u);
  EXPECT_EQ(reg.histo("e2e.solve_us").snapshot().count, 2u);
  EXPECT_EQ(reg.histo("e2e.fanout_us").snapshot().count, 2u);
  EXPECT_EQ(svc.metrics().counter("svc.trace_marks").value(), 2u);
  EXPECT_EQ(svc.metrics().counter("svc.trace_echoes").value(), 2u);
  EXPECT_EQ(svc.metrics().counter("svc.trace_drops").value(), 0u);
}

TEST_F(LoopbackTest, InlineTraceAndFlowletEndDropsContext) {
  // Inline (num_shards == 0) trace path: sampled starts complete their
  // loop without shard rings, and a flowlet_end before the first rate
  // update retires the parked context (counted as a drop, not leaked).
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  AllocatorService svc(loop, alloc, clos, scfg);

  obs::MetricsRegistry reg;
  AgentConfig acfg;
  acfg.metrics = &reg;
  acfg.trace_sample_every = 1;
  EndpointAgent agent(acfg);
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};

  // Flow 21 completes its trace; flow 22 ends before any round runs, so
  // its context is erased without an echo.
  ASSERT_TRUE(agent.flowlet_start(21, 0, 5));
  ASSERT_TRUE(agent.flowlet_start(22, 1, 9));
  agent.flush();
  std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < 2 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), 2u);
  ASSERT_TRUE(agent.flowlet_end(22));
  agent.flush();
  deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() > 1 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), 1u);

  deadline = EpollLoop::now_us() + 2'000'000;
  while (agent.stats().traces_completed < 1 &&
         EpollLoop::now_us() < deadline) {
    svc.run_allocation_round();
    pump(loop, raw);
  }
  EXPECT_EQ(agent.stats().traces_completed, 1u);
  EXPECT_EQ(agent.last_trace().mark.flow_key, 21u);
  EXPECT_EQ(svc.metrics().counter("svc.trace_echoes").value(), 1u);
}

TEST_F(LoopbackTest, InjectedStallPromotesRoundIntoFlightRecorder) {
  // Fault injection end-to-end: a forced 2 ms stall inside one round's
  // fanout phase must appear in the flight recorder's black box with the
  // stall attributed to fanout_us, while ordinary rounds stay below the
  // promotion threshold.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.flight.warmup_rounds = 16;
  // Floor well above an ordinary inline round (a few us) but well below
  // the injected stall, so promotion is deterministic even on a noisy
  // CI box.
  scfg.flight.promote_floor_us = 500.0;
  scfg.stall_every_rounds = 64;  // rounds 64, 128, ... stall
  scfg.stall_us = 2000;
  AllocatorService svc(loop, alloc, clos, scfg);

  EndpointAgent agent;
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};
  ASSERT_TRUE(agent.flowlet_start(5, 0, 5));
  agent.flush();
  const std::int64_t deadline = EpollLoop::now_us() + 2'000'000;
  while (alloc.num_active_flowlets() < 1 &&
         EpollLoop::now_us() < deadline) {
    pump(loop, raw);
  }
  ASSERT_EQ(alloc.num_active_flowlets(), 1u);

  for (int i = 0; i < 128; ++i) {
    svc.run_allocation_round();
    pump(loop, raw);
  }

  const obs::FlightRecorder& fr = svc.flight();
  EXPECT_EQ(fr.rounds_seen(), 128u);
  ASSERT_GE(fr.promoted(), 2u);  // both stall rounds breach the floor
  const auto bb = fr.black_box();
  ASSERT_FALSE(bb.empty());
  int stalls_in_box = 0;
  for (const obs::RoundRecord& r : bb) {
    EXPECT_GT(r.threshold_us, 0.0f);
    EXPECT_GT(r.round_us, static_cast<double>(r.threshold_us));
    if ((r.round + 1) % scfg.stall_every_rounds == 0 &&
        r.fanout_us >= 2000.0) {
      ++stalls_in_box;  // phase attribution points at the fanout stall
    }
  }
  EXPECT_EQ(stalls_in_box, 2);
  // The dump is self-describing JSON tools/obs_dump.py renders.
  const std::string dump = fr.dump_json();
  EXPECT_NE(dump.find("\"kind\":\"flight\""), std::string::npos);
  EXPECT_NE(dump.find("\"black_box\":["), std::string::npos);
}

}  // namespace
}  // namespace ft::net
