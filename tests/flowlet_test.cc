// Tests for the flowlet detection engine (src/flowlet/): the bounded
// FlowletTable, the static and FlowDyn-style dynamic gap detectors,
// accuracy scoring against packet-trace ground truth, and the
// in-simulation host-NIC tap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "flowlet/accuracy.h"
#include "flowlet/detector.h"
#include "flowlet/table.h"
#include "sim/flowlet_tap.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "topo/clos.h"
#include "workload/traffic_gen.h"

namespace ft::flowlet {
namespace {

// ---------------------------------------------------------------------
// FlowletTable

TEST(FlowletTableTest, ClaimFindRelease) {
  FlowletTable table(8);
  EXPECT_EQ(table.capacity(), 8u);
  EXPECT_EQ(table.find(42), nullptr);

  bool evicted = false;
  FlowSlot dead;
  FlowSlot& s = table.claim(42, evicted, dead);
  EXPECT_FALSE(evicted);
  EXPECT_EQ(s.key, 42u);
  EXPECT_TRUE(s.occupied);
  EXPECT_EQ(table.occupied(), 1u);

  s.last_seen = 123;
  s.user_tag = 500;
  FlowSlot& again = table.claim(42, evicted, dead);
  EXPECT_FALSE(evicted);
  EXPECT_EQ(again.last_seen, 123);  // state persisted
  EXPECT_EQ(again.user_tag, 500);   // owner tag persisted too
  EXPECT_EQ(table.stats().hits, 1u);

  ASSERT_NE(table.find(42), nullptr);
  table.release(*table.find(42));
  EXPECT_EQ(table.find(42), nullptr);
  EXPECT_EQ(table.occupied(), 0u);
}

TEST(FlowletTableTest, EvictionRecyclesSlotAndReturnsIncumbent) {
  FlowletTable table(2);  // 2 slots: collisions guaranteed quickly
  bool evicted = false;
  FlowSlot dead;
  std::uint64_t evictions = 0;
  for (std::uint32_t key = 1; key <= 64; ++key) {
    FlowSlot& s = table.claim(key, evicted, dead);
    EXPECT_EQ(s.key, key);
    if (evicted) {
      ++evictions;
      EXPECT_NE(dead.key, key);
      EXPECT_TRUE(dead.occupied);
    }
  }
  EXPECT_EQ(evictions, table.stats().evictions);
  EXPECT_GE(evictions, 62u);  // 64 keys into 2 slots
  EXPECT_LE(table.occupied(), 2u);
}

TEST(FlowletTableTest, MemoryBoundedUnderMillionFlowChurn) {
  constexpr std::size_t kCapacity = 4096;
  FlowletTable table(kCapacity);
  bool evicted = false;
  FlowSlot dead;
  for (std::uint32_t key = 1; key <= 1'000'000; ++key) {
    FlowSlot& s = table.claim(key, evicted, dead);
    s.in_flowlet = true;  // slots carry live state through recycling
    s.last_seen = key;
  }
  // The table never grew: one million flows churned through the same
  // fixed slot array.
  EXPECT_EQ(table.capacity(), kCapacity);
  EXPECT_EQ(table.slots().size(), kCapacity);
  EXPECT_LE(table.occupied(), kCapacity);
  EXPECT_EQ(table.stats().inserts, 1'000'000u);
  EXPECT_EQ(table.stats().evictions,
            1'000'000u - table.occupied());
}

// ---------------------------------------------------------------------
// Detectors

struct EventLog {
  std::vector<std::uint32_t> starts;
  std::vector<std::uint32_t> ends;

  void attach(FlowletDetector& det) {
    det.set_callbacks(
        [this](const PacketRecord& p) { starts.push_back(p.flow_key); },
        [this](std::uint32_t key, Time) { ends.push_back(key); });
  }
};

PacketRecord pkt(std::uint32_t key, Time at, std::uint32_t bytes = 1500) {
  PacketRecord p;
  p.flow_key = key;
  p.at = at;
  p.bytes = bytes;
  return p;
}

TEST(StaticGapDetectorTest, SplitsExactlyAtGapExceedingSilences) {
  StaticGapConfig cfg;
  cfg.gap = 50 * kMicrosecond;
  StaticGapDetector det(cfg);
  EventLog log;
  log.attach(det);

  // Three packets 10us apart, a 200us silence, three more.
  for (int i = 0; i < 3; ++i) {
    det.on_packet(pkt(7, i * 10 * kMicrosecond));
  }
  const Time resume = 20 * kMicrosecond + 200 * kMicrosecond;
  for (int i = 0; i < 3; ++i) {
    det.on_packet(pkt(7, resume + i * 10 * kMicrosecond));
  }
  EXPECT_EQ(log.starts, (std::vector<std::uint32_t>{7, 7}));
  EXPECT_EQ(log.ends, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(det.stats().gap_ends, 1u);

  // Idle sweep past the gap ends the second flowlet.
  det.advance(resume + 20 * kMicrosecond + 51 * kMicrosecond);
  EXPECT_EQ(log.ends, (std::vector<std::uint32_t>{7, 7}));
  EXPECT_EQ(det.stats().idle_ends, 1u);
}

TEST(DynamicGapDetectorTest, NeverSplitsSteadyPacedStream) {
  DynamicGapDetector det;
  EventLog log;
  log.attach(det);
  // 20k packets at a constant 5us: EWMA converges to 5us, gap to
  // 8 x 5us = 40us; the stream must stay one flowlet.
  for (int i = 0; i < 20'000; ++i) {
    det.on_packet(pkt(1, static_cast<Time>(i) * 5 * kMicrosecond));
  }
  EXPECT_EQ(log.starts.size(), 1u);
  EXPECT_TRUE(log.ends.empty());
  EXPECT_EQ(det.stats().gap_ends, 0u);
}

TEST(DynamicGapDetectorTest, NeverSplitsJitteredPacedStream) {
  DynamicGapDetector det;
  EventLog log;
  log.attach(det);
  Rng rng(5);
  Time t = 0;
  for (int i = 0; i < 20'000; ++i) {
    det.on_packet(pkt(1, t));
    // Spacing uniform in [2us, 6us): bounded jitter well inside the
    // 8x EWMA threshold.
    t += static_cast<Time>(rng.uniform(2.0, 6.0) *
                           static_cast<double>(kMicrosecond));
  }
  EXPECT_EQ(log.starts.size(), 1u);
  EXPECT_EQ(det.stats().gap_ends, 0u);
}

TEST(DynamicGapDetectorTest, AdaptsGapPerFlow) {
  DynamicGapDetector det;
  // Flow 1 paced at 2us, flow 2 paced at 30us: each flow's learned gap
  // tracks its own spacing (8x the EWMA), so the thresholds end up
  // ~15x apart -- the per-flow adaptation a single static gap cannot do.
  for (int i = 0; i < 1000; ++i) {
    det.on_packet(pkt(1, static_cast<Time>(i) * 2 * kMicrosecond));
    det.on_packet(pkt(2, static_cast<Time>(i) * 30 * kMicrosecond));
  }
  const FlowSlot* f1 = det.table().find(1);
  const FlowSlot* f2 = det.table().find(2);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f1->gap, 8 * 2 * kMicrosecond);
  EXPECT_EQ(f2->gap, 8 * 30 * kMicrosecond);
  // A flow paced slower than its gap ever allows degenerates into
  // single-packet flowlets and must keep its initial threshold.
  for (int i = 0; i < 100; ++i) {
    det.on_packet(pkt(3, static_cast<Time>(i) * 200 * kMicrosecond));
  }
  ASSERT_NE(det.table().find(3), nullptr);
  EXPECT_EQ(det.table().find(3)->gap, det.config().initial_gap);
}

TEST(DynamicGapDetectorTest, RttFloorRaisesGap) {
  DynamicGapDetector det;
  // Paced at 1us (gap would clamp to min_gap = 10us), but with a
  // measured RTT of 40us the gap must rise to rtt_mult x 40us = 60us.
  Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    PacketRecord p = pkt(3, t);
    p.rtt_hint = 40 * kMicrosecond;
    det.on_packet(p);
    t += kMicrosecond;
  }
  const FlowSlot* s = det.table().find(3);
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR(static_cast<double>(s->gap),
              1.5 * 40.0 * static_cast<double>(kMicrosecond),
              2.0 * static_cast<double>(kMicrosecond));
}

TEST(GapDetectorTest, EvictionForcesFlowletEnd) {
  StaticGapConfig cfg;
  cfg.table_capacity = 2;
  StaticGapDetector det(cfg);
  EventLog log;
  log.attach(det);
  for (std::uint32_t key = 1; key <= 8; ++key) {
    det.on_packet(pkt(key, static_cast<Time>(key) * kMicrosecond));
  }
  EXPECT_GT(det.stats().evicted_ends, 0u);
  EXPECT_EQ(det.stats().ends, log.ends.size());
  EXPECT_EQ(det.stats().starts, 8u);
}

TEST(GapDetectorTest, EndFlowSuppressesIdleCallback) {
  StaticGapConfig cfg;
  cfg.gap = 10 * kMicrosecond;
  StaticGapDetector det(cfg);
  EventLog log;
  log.attach(det);
  det.on_packet(pkt(5, 0));
  EXPECT_TRUE(det.end_flow(5));
  EXPECT_FALSE(det.end_flow(5));  // already ended
  det.advance(kSecond);
  EXPECT_TRUE(log.ends.empty());  // externally ended: no idle callback
}

// ---------------------------------------------------------------------
// Accuracy against generated ground truth

TEST(AccuracyTest, RecoversExactBoundariesWhenGapsDominateSpacing) {
  // Property: when inter-flowlet think gaps (>= 200us) dwarf the paced
  // intra-flowlet spacing (~1.2-2.4us), the dynamic detector must
  // recover exactly the ground-truth boundaries -- every trace, every
  // seed, no tuning.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    wl::TrafficConfig cfg;
    cfg.num_hosts = 16;
    cfg.load = 0.2;
    cfg.workload = wl::Workload::kWeb;
    cfg.seed = seed;
    wl::BurstConfig burst;
    burst.min_think_gap = 200 * kMicrosecond;
    burst.mean_think_gap = 300 * kMicrosecond;
    DynamicGapConfig dcfg;
    dcfg.table_capacity = 1 << 16;  // collision-free at this scale
    wl::PacketTraceGenerator gen(cfg, burst);
    const wl::PacketTrace trace = gen.generate(from_ms(10));
    ASSERT_GT(trace.bursts, 100u) << "seed " << seed;

    DynamicGapDetector det(dcfg);
    const TraceScore score = score_trace(det, trace.packets);
    EXPECT_EQ(score.truth_boundaries, trace.bursts) << "seed " << seed;
    EXPECT_EQ(score.packets, trace.packets.size()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(score.precision, 1.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(score.recall, 1.0) << "seed " << seed;
  }
}

TEST(AccuracyTest, DynamicBeatsMisconfiguredStaticOnWebTrace) {
  // Acceptance criterion at coarse tolerance: web workload, 0.6 load,
  // default burst structure. The untuned dynamic detector clears
  // 95/95; a 4x-misconfigured static gap (200us vs the trace's ~50us
  // sweet spot) loses a measurable chunk of recall.
  wl::TrafficConfig cfg;
  cfg.num_hosts = 32;
  cfg.load = 0.6;
  cfg.workload = wl::Workload::kWeb;
  cfg.seed = 11;
  wl::PacketTraceGenerator gen(cfg);
  const wl::PacketTrace trace = gen.generate(from_ms(20));

  DynamicGapDetector dyn;
  const TraceScore ds = score_trace(dyn, trace.packets);
  EXPECT_GE(ds.precision, 0.95);
  EXPECT_GE(ds.recall, 0.95);

  StaticGapConfig scfg;
  scfg.gap = 200 * kMicrosecond;  // 4x the appropriate threshold
  StaticGapDetector misconfigured(scfg);
  const TraceScore ss = score_trace(misconfigured, trace.packets);
  EXPECT_LT(ss.recall, ds.recall - 0.05);
}

// ---------------------------------------------------------------------
// In-simulation host-NIC tap

TEST(FlowletTapTest, ScoresDetectionUnderSimulationTiming) {
  topo::ClosConfig tcfg;
  tcfg.racks = 2;
  tcfg.servers_per_rack = 4;
  tcfg.spines = 2;
  topo::ClosTopology clos(tcfg);

  wl::TrafficConfig cfg;
  cfg.num_hosts = clos.num_hosts();
  cfg.load = 0.4;
  cfg.workload = wl::Workload::kWeb;
  cfg.seed = 3;
  wl::PacketTraceGenerator gen(cfg);
  wl::PacketTrace trace = gen.generate(from_ms(5));
  ASSERT_GT(trace.packets.size(), 1000u);
  const std::size_t packets = trace.packets.size();
  const std::size_t bursts = trace.bursts;

  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<sim::DropTailQueue>(1 << 22);
  });
  DynamicGapDetector det;
  sim::FlowletTap tap(net, det, kMillisecond);
  sim::TraceReplay replay(net, std::move(trace.packets));
  replay.start();
  tap.start(from_ms(60));
  s.run_until(from_ms(80));

  EXPECT_EQ(replay.injected(), packets);
  EXPECT_EQ(replay.delivered(), packets);
  EXPECT_EQ(tap.scorer().packets(), packets);
  const std::uint64_t truth = tap.scorer().true_positives() +
                              tap.scorer().false_negatives();
  EXPECT_EQ(truth, bursts);
  EXPECT_GE(tap.scorer().precision(), 0.95);
  EXPECT_GE(tap.scorer().recall(), 0.95);
  EXPECT_EQ(s.pool.outstanding(), 0u);
}

}  // namespace
}  // namespace ft::flowlet
