// Correctness tests for the NUM solvers: closed-form optima on small
// topologies, KKT verification on random instances, convergence-speed
// ordering (NED vs Gradient), churn behaviour, the paper's gamma
// robustness claim, and RT-vs-reference agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/exact.h"
#include "core/fgm.h"
#include "core/gradient.h"
#include "core/ned.h"
#include "core/newton_like.h"
#include "core/problem.h"
#include "core/rt.h"

namespace ft::core {
namespace {

std::vector<LinkId> route(std::initializer_list<std::uint32_t> ids) {
  std::vector<LinkId> r;
  for (auto i : ids) r.emplace_back(i);
  return r;
}

// --------------------------------------------------------------------
// Closed-form optima
// --------------------------------------------------------------------

TEST(NedTest, SingleLinkEqualShare) {
  NumProblem p({10e9});
  for (int i = 0; i < 4; ++i) {
    p.add_flow(route({0}), Utility::log_utility());
  }
  NedSolver ned(p);
  for (int i = 0; i < 200; ++i) ned.iterate();
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(ned.rates()[s], 2.5e9, 2.5e9 * 1e-4);
  }
  // Optimal price: n * w / c.
  EXPECT_NEAR(ned.prices()[0], 4.0 * 1e9 / 10e9, 1e-3);
}

TEST(NedTest, WeightedProportionalShare) {
  NumProblem p({12e9});
  p.add_flow(route({0}), Utility::log_utility(1e9));
  p.add_flow(route({0}), Utility::log_utility(2e9));
  p.add_flow(route({0}), Utility::log_utility(3e9));
  NedSolver ned(p);
  for (int i = 0; i < 300; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[0], 2e9, 2e9 * 1e-3);
  EXPECT_NEAR(ned.rates()[1], 4e9, 4e9 * 1e-3);
  EXPECT_NEAR(ned.rates()[2], 6e9, 6e9 * 1e-3);
}

TEST(NedTest, TandemNetworkClassicOptimum) {
  // Flow 0 crosses links A and B; flows 1, 2 cross one link each.
  // Proportional fairness gives x0 = c/3, x1 = x2 = 2c/3.
  const double c = 10e9;
  NumProblem p({c, c});
  p.add_flow(route({0, 1}), Utility::log_utility());
  p.add_flow(route({0}), Utility::log_utility());
  p.add_flow(route({1}), Utility::log_utility());
  NedSolver ned(p);
  for (int i = 0; i < 400; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[0], c / 3, c / 3 * 1e-3);
  EXPECT_NEAR(ned.rates()[1], 2 * c / 3, c * 1e-3);
  EXPECT_NEAR(ned.rates()[2], 2 * c / 3, c * 1e-3);
}

TEST(NedTest, AlphaFairWeights) {
  // alpha = 2, weights 1 and 4 -> rate ratio sqrt(4) = 2.
  NumProblem p({9e9});
  p.add_flow(route({0}), Utility::alpha_fair(2.0, 1e9));
  p.add_flow(route({0}), Utility::alpha_fair(2.0, 4e9));
  NedSolver ned(p);
  for (int i = 0; i < 500; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[1] / ned.rates()[0], 2.0, 1e-3);
  EXPECT_NEAR(ned.rates()[0] + ned.rates()[1], 9e9, 9e9 * 1e-4);
}

TEST(NedTest, SingleFlowPinnedAtBottleneck) {
  NumProblem p({10e9, 40e9});
  p.add_flow(route({0, 1}), Utility::log_utility());
  NedSolver ned(p);
  for (int i = 0; i < 200; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[0], 10e9, 10e9 * 1e-3);
}

// --------------------------------------------------------------------
// Convergence behaviour
// --------------------------------------------------------------------

int iters_to_converge(Solver& s, std::span<const double> target,
                      double rel_tol, int max_iters) {
  for (int it = 1; it <= max_iters; ++it) {
    s.iterate();
    bool ok = true;
    for (std::size_t i = 0; i < target.size(); ++i) {
      if (std::abs(s.rates()[i] - target[i]) > rel_tol * target[i]) {
        ok = false;
        break;
      }
    }
    if (ok) return it;
  }
  return -1;
}

TEST(ConvergenceTest, NedFasterThanGradient) {
  const std::vector<double> target{2.5e9, 2.5e9, 2.5e9, 2.5e9};
  NumProblem p1({10e9});
  for (int i = 0; i < 4; ++i) p1.add_flow(route({0}), {});
  NedSolver ned(p1);
  const int ned_iters = iters_to_converge(ned, target, 0.01, 5000);

  NumProblem p2({10e9});
  for (int i = 0; i < 4; ++i) p2.add_flow(route({0}), {});
  GradientSolver grad(p2);
  const int grad_iters = iters_to_converge(grad, target, 0.01, 5000);

  ASSERT_GT(ned_iters, 0);
  ASSERT_GT(grad_iters, 0);
  EXPECT_LT(ned_iters, grad_iters);
}

TEST(ConvergenceTest, GammaRobustRange) {
  // §6.2: for gamma in [0.2, 1.5] the network performs similarly; verify
  // NED converges across that whole range.
  for (double gamma : {0.2, 0.4, 0.8, 1.0, 1.2, 1.5}) {
    NumProblem p({10e9, 10e9});
    p.add_flow(route({0, 1}), {});
    p.add_flow(route({0}), {});
    p.add_flow(route({1}), {});
    NedSolver ned(p, gamma);
    const std::vector<double> target{10e9 / 3, 20e9 / 3, 20e9 / 3};
    EXPECT_GT(iters_to_converge(ned, target, 0.01, 5000), 0)
        << "gamma=" << gamma;
  }
}

TEST(ConvergenceTest, ChurnReconvergence) {
  NumProblem p({10e9});
  const FlowIndex a = p.add_flow(route({0}), {});
  NedSolver ned(p);
  for (int i = 0; i < 200; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 10e9, 10e9 * 0.01);

  // A second flow arrives: both should converge to c/2.
  const FlowIndex b = p.add_flow(route({0}), {});
  for (int i = 0; i < 300; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 5e9, 5e9 * 0.01);
  EXPECT_NEAR(ned.rates()[b], 5e9, 5e9 * 0.01);

  // First flow leaves: survivor reclaims the link.
  p.remove_flow(a);
  for (int i = 0; i < 300; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[b], 10e9, 10e9 * 0.01);
}

TEST(ConvergenceTest, ClampedFlowRecovery) {
  // Reaches the all-flows-clamped over-allocated state the multiplicative
  // guard in ned.cc exists for: one flow pinned at capacity (price near
  // w/c), then a second arrives.
  NumProblem p({10e9});
  const FlowIndex a = p.add_flow(route({0}), {});
  NedSolver ned(p);
  for (int i = 0; i < 500; ++i) ned.iterate();
  const FlowIndex b = p.add_flow(route({0}), {});
  for (int i = 0; i < 500; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 5e9, 5e9 * 0.02);
  EXPECT_NEAR(ned.rates()[b], 5e9, 5e9 * 0.02);
  // And feasible.
  EXPECT_LE(ned.link_alloc()[0], 10e9 * 1.01);
}

// --------------------------------------------------------------------
// Exact solver + KKT on random instances
// --------------------------------------------------------------------

struct RandomProblem {
  NumProblem problem;
  int flows;
};

NumProblem random_problem(std::uint64_t seed, std::size_t links,
                          std::size_t flows) {
  Rng rng(seed);
  std::vector<double> caps;
  caps.reserve(links);
  for (std::size_t l = 0; l < links; ++l) {
    caps.push_back(rng.uniform(5e9, 40e9));
  }
  NumProblem p(std::move(caps));
  for (std::size_t f = 0; f < flows; ++f) {
    const std::size_t hops = 1 + rng.below(4);
    std::vector<LinkId> r;
    std::size_t start = rng.below(links);
    for (std::size_t h = 0; h < hops; ++h) {
      // Distinct links per route.
      r.emplace_back(
          static_cast<std::uint32_t>((start + h * 7 + h) % links));
    }
    // De-duplicate while preserving order.
    std::vector<LinkId> uniq;
    for (LinkId l : r) {
      bool seen = false;
      for (LinkId u : uniq) seen = seen || u == l;
      if (!seen) uniq.push_back(l);
    }
    p.add_flow(uniq, Utility::log_utility(rng.uniform(0.5e9, 2e9)));
  }
  return p;
}

class ExactSolveP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactSolveP, KktResidualSmall) {
  NumProblem p = random_problem(GetParam(), 12, 40);
  const ExactResult res = solve_exact(p);
  EXPECT_TRUE(res.converged) << "seed " << GetParam();
  EXPECT_LT(res.kkt_residual, 1e-3) << "seed " << GetParam();
  EXPECT_GT(res.total_rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSolveP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

TEST(ExactTest, ObjectiveIsMaximal) {
  // Perturbing the optimal rates along feasible directions must not
  // increase the objective.
  NumProblem p = random_problem(123, 6, 12);
  const ExactResult res = solve_exact(p);
  ASSERT_TRUE(res.converged);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> perturbed = res.rates;
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      if (!p.flow(s).active()) continue;
      perturbed[s] =
          std::max(1.0, perturbed[s] * rng.uniform(0.9, 0.999));
    }
    // Scaled-down rates are feasible; objective must be lower.
    EXPECT_LE(objective_value(p, perturbed), res.objective);
  }
}

// --------------------------------------------------------------------
// Baselines
// --------------------------------------------------------------------

TEST(GradientTest, ConvergesOnSingleLink) {
  NumProblem p({10e9});
  for (int i = 0; i < 4; ++i) p.add_flow(route({0}), {});
  GradientSolver grad(p, 0.1);
  for (int i = 0; i < 5000; ++i) grad.iterate();
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(grad.rates()[s], 2.5e9, 2.5e9 * 0.02);
  }
}

TEST(NewtonLikeTest, ConvergesOnStaticProblem) {
  NumProblem p({10e9});
  for (int i = 0; i < 4; ++i) p.add_flow(route({0}), {});
  NewtonLikeSolver nl(p);
  for (int i = 0; i < 3000; ++i) nl.iterate();
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(nl.rates()[s], 2.5e9, 2.5e9 * 0.05);
  }
}

TEST(FgmTest, ConvergesOnStaticProblem) {
  NumProblem p({10e9});
  for (int i = 0; i < 4; ++i) p.add_flow(route({0}), {});
  FgmSolver fgm(p);
  double best_err = 1e18;
  for (int i = 0; i < 5000; ++i) {
    fgm.iterate();
    double err = 0;
    for (int s = 0; s < 4; ++s) {
      err = std::max(err, std::abs(fgm.rates()[s] - 2.5e9));
    }
    best_err = std::min(best_err, err);
  }
  // Accelerated gradient oscillates; require it to have come close at
  // some point.
  EXPECT_LT(best_err, 2.5e9 * 0.05);
}

TEST(FgmTest, ChurnCausesLargeOverAllocation) {
  // Figure 12's qualitative claim: under flowlet churn FGM's momentum
  // makes allocations unrealistic, far worse than NED's transients.
  Rng rng(5);
  NumProblem pf({10e9, 10e9, 10e9, 10e9});
  NumProblem pn({10e9, 10e9, 10e9, 10e9});
  FgmSolver fgm(pf);
  NedSolver ned(pn);
  std::vector<FlowIndex> af, an;
  double fgm_over = 0.0, ned_over = 0.0;
  Rng rng2(5);
  for (int step = 0; step < 2000; ++step) {
    const auto l0 = static_cast<std::uint32_t>(rng.below(4));
    const auto l1 = static_cast<std::uint32_t>(rng.below(4));
    const bool add = af.size() < 4 || rng.uniform() < 0.5;
    if (add) {
      auto r = l0 == l1 ? route({l0}) : route({l0, l1});
      af.push_back(pf.add_flow(r, {}));
      an.push_back(pn.add_flow(r, {}));
    } else {
      const auto pick = rng.below(af.size());
      pf.remove_flow(af[pick]);
      pn.remove_flow(an[pick]);
      af.erase(af.begin() + static_cast<std::ptrdiff_t>(pick));
      an.erase(an.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    for (int i = 0; i < 3; ++i) {
      fgm.iterate();
      ned.iterate();
    }
    fgm_over += fgm.total_over_allocation();
    ned_over += ned.total_over_allocation();
  }
  EXPECT_GT(fgm_over, 2.0 * ned_over);
}

// --------------------------------------------------------------------
// RT variants
// --------------------------------------------------------------------

TEST(FastRecipTest, AccurateOverWideRange) {
  for (float x = 1e-6f; x < 1e12f; x *= 3.7f) {
    const float r = fast_recip(x);
    EXPECT_NEAR(r * x, 1.0f, 1e-4f) << x;
  }
}

TEST(RtTest, NedRtTracksReference) {
  NumProblem pr = random_problem(77, 8, 24);
  NumProblem pt = random_problem(77, 8, 24);
  NedSolver ref(pr);
  NedRtSolver rt(pt);
  for (int i = 0; i < 300; ++i) {
    ref.iterate();
    rt.iterate();
  }
  for (FlowIndex s = 0; s < pr.num_slots(); ++s) {
    if (!pr.flow(s).active()) continue;
    EXPECT_NEAR(rt.rates()[s], ref.rates()[s],
                std::max(1e6, ref.rates()[s] * 0.02))
        << "slot " << s;
  }
}

TEST(RtTest, GradientRtTracksReference) {
  NumProblem pr = random_problem(78, 8, 24);
  NumProblem pt = random_problem(78, 8, 24);
  GradientSolver ref(pr, 0.1);
  GradientRtSolver rt(pt, 0.1);
  for (int i = 0; i < 1000; ++i) {
    ref.iterate();
    rt.iterate();
  }
  for (FlowIndex s = 0; s < pr.num_slots(); ++s) {
    if (!pr.flow(s).active()) continue;
    EXPECT_NEAR(rt.rates()[s], ref.rates()[s],
                std::max(1e6, ref.rates()[s] * 0.02));
  }
}

// --------------------------------------------------------------------
// Problem bookkeeping
// --------------------------------------------------------------------

TEST(ProblemTest, SlotReuseAfterRemoval) {
  NumProblem p({10e9});
  const FlowIndex a = p.add_flow(route({0}), {});
  const FlowIndex b = p.add_flow(route({0}), {});
  EXPECT_EQ(p.num_active(), 2u);
  p.remove_flow(a);
  EXPECT_EQ(p.num_active(), 1u);
  const FlowIndex c = p.add_flow(route({0}), {});
  EXPECT_EQ(c, a);  // free list reuse
  EXPECT_EQ(p.num_slots(), 2u);
  (void)b;
}

TEST(ProblemTest, RateCapIsBottleneck) {
  NumProblem p({10e9, 40e9, 20e9});
  const FlowIndex f = p.add_flow(route({1, 2}), {});
  EXPECT_DOUBLE_EQ(p.flow(f).rate_cap(), 20e9);
}

TEST(ProblemTest, VersionBumpsOnChurn) {
  NumProblem p({1e9});
  const auto v0 = p.version();
  const FlowIndex f = p.add_flow(route({0}), {});
  EXPECT_GT(p.version(), v0);
  const auto v1 = p.version();
  p.remove_flow(f);
  EXPECT_GT(p.version(), v1);
}


TEST(ProblemTest, LinkFlowAdjacencyTracksChurn) {
  // The CSR-style link->flow adjacency must stay exact under add/remove
  // with slot recycling: each link lists exactly the active flows
  // traversing it, with correct route positions.
  NumProblem p({1e9, 2e9, 3e9});
  const auto check = [&] {
    for (std::size_t l = 0; l < p.num_links(); ++l) {
      for (const std::uint32_t e : p.link_flows(l)) {
        const FlowIndex s = NumProblem::adj_slot(e);
        const std::uint32_t i = NumProblem::adj_route_idx(e);
        ASSERT_TRUE(p.flow(s).active());
        ASSERT_LT(i, p.flow(s).route().size());
        EXPECT_EQ(p.flow(s).route()[i], l);
      }
    }
    // Every active flow's links appear exactly once.
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      if (!p.flow(s).active()) continue;
      for (std::uint32_t l : p.flow(s).route()) {
        int hits = 0;
        for (const std::uint32_t e : p.link_flows(l)) {
          if (NumProblem::adj_slot(e) == s) ++hits;
        }
        EXPECT_EQ(hits, 1) << "slot " << s << " link " << l;
      }
    }
  };
  const FlowIndex a = p.add_flow(route({0, 1}), {});
  const FlowIndex b = p.add_flow(route({1, 2}), {});
  const FlowIndex c = p.add_flow(route({0, 2}), {});
  check();
  EXPECT_EQ(p.link_flows(1).size(), 2u);
  p.remove_flow(b);
  check();
  EXPECT_EQ(p.link_flows(1).size(), 1u);
  const FlowIndex d = p.add_flow(route({1}), {});  // recycles b's slot
  EXPECT_EQ(d, b);
  check();
  p.remove_flow(a);
  p.remove_flow(c);
  p.remove_flow(d);
  for (std::size_t l = 0; l < p.num_links(); ++l) {
    EXPECT_TRUE(p.link_flows(l).empty());
  }
}

TEST(ProblemTest, SetCapacityRefreshesOnlyFlowsOnLink) {
  NumProblem p({10e9, 20e9});
  const FlowIndex on = p.add_flow(route({0, 1}), {});
  const FlowIndex off = p.add_flow(route({1}), {});
  EXPECT_DOUBLE_EQ(p.flow(on).rate_cap(), 10e9);
  EXPECT_DOUBLE_EQ(p.flow(off).rate_cap(), 20e9);
  p.set_capacity(0, 4e9);
  EXPECT_DOUBLE_EQ(p.flow(on).rate_cap(), 4e9);
  EXPECT_DOUBLE_EQ(p.flow(off).rate_cap(), 20e9);
  // Demand bound moved with the new bottleneck.
  const Utility u = p.flow(on).util();
  EXPECT_DOUBLE_EQ(p.flow(on).price_floor(),
                   u.weight / std::pow(kDemandCapFactor * 4e9, u.alpha));
}

TEST(ProblemTest, ReservePreSizesSlotArrays) {
  NumProblem p({1e9});
  p.reserve(64);
  std::vector<FlowIndex> slots;
  for (int i = 0; i < 64; ++i) slots.push_back(p.add_flow(route({0}), {}));
  EXPECT_EQ(p.num_active(), 64u);
  for (const FlowIndex s : slots) p.remove_flow(s);
  EXPECT_EQ(p.num_active(), 0u);
}

}  // namespace
}  // namespace ft::core
