// Tests for the transport layer: TCP correctness (delivery, completion
// timing, loss recovery), pacing, DCTCP marking response, pFabric
// priority behaviour, XCP convergence, and the Flowtune control plane.
#include <gtest/gtest.h>

#include <memory>

#include "common/ratecode.h"
#include "sim/simulator.h"
#include "topo/clos.h"
#include "transport/control.h"
#include "transport/cubic.h"
#include "transport/dctcp.h"
#include "transport/experiment.h"
#include "transport/pfabric.h"
#include "transport/tcp.h"
#include "transport/xcp.h"

namespace ft::transport {
namespace {

struct TestNet {
  topo::ClosTopology clos;
  sim::Simulator s;
  sim::Network net;
  FlowRegistry reg;

  explicit TestNet(std::int64_t queue_limit = 1 << 20,
                   std::int64_t ecn_threshold = 0,
                   topo::ClosConfig cfg = default_cfg())
      : clos(cfg),
        net(s.events, s.pool, clos,
            [queue_limit, ecn_threshold](double) {
              return std::make_unique<sim::DropTailQueue>(queue_limit,
                                                          ecn_threshold);
            }),
        reg(net) {}

  static topo::ClosConfig default_cfg() {
    topo::ClosConfig cfg;
    cfg.racks = 2;
    cfg.servers_per_rack = 4;
    cfg.spines = 2;
    cfg.fabric_link_bps = 20e9;
    return cfg;
  }

  template <class F>
  std::unique_ptr<F> make_flow(std::int32_t src, std::int32_t dst,
                               TcpConfig cfg = TcpConfig()) {
    const auto fwd = clos.host_path(clos.host(src), clos.host(dst), 0);
    const auto rev = clos.host_path(clos.host(dst), clos.host(src), 0);
    return std::make_unique<F>(reg, src, dst, fwd, rev, cfg);
  }
};

TEST(TcpTest, TransfersAllBytesExactly) {
  TestNet t;
  auto flow = t.make_flow<TcpFlow>(0, 5);
  std::int64_t delivered = 0;
  bool done = false;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->on_complete = [&] { done = true; };
  flow->app_send(100'000);
  flow->app_close();
  t.s.run_until(from_ms(50));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 100'000);
  EXPECT_EQ(flow->retransmits(), 0u);  // empty network: no losses
}

TEST(TcpTest, SingleSegmentFlowCompletesNearIdeal) {
  TestNet t;
  auto flow = t.make_flow<TcpFlow>(0, 1);  // same rack, 2 hops
  Time done_at = -1;
  flow->on_complete = [&] { done_at = t.s.now(); };
  flow->app_send(1000);
  flow->app_close();
  t.s.run_until(from_ms(5));
  ASSERT_GT(done_at, 0);
  // Ideal: serialization + 14us RTT-ish. Allow small slack, but the
  // result must be well under one ms (no spurious timeouts).
  EXPECT_LT(done_at, from_us(30));
}

TEST(TcpTest, RecoversFromDrops) {
  // 10-packet queue forces slow-start overshoot drops.
  TestNet t(10 * 1538);
  auto flow = t.make_flow<TcpFlow>(0, 4);  // cross-rack
  bool done = false;
  std::int64_t delivered = 0;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->on_complete = [&] { done = true; };
  flow->app_send(3'000'000);
  flow->app_close();
  t.s.run_until(from_ms(200));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 3'000'000);
  EXPECT_GT(flow->retransmits(), 0u);  // drops actually happened
}

TEST(TcpTest, SlowStartRampsExponentially) {
  TestNet t;
  auto flow = t.make_flow<TcpFlow>(0, 4);
  flow->app_send(10'000'000);
  flow->app_close();
  // After a few RTTs the window should have grown well past the initial
  // 10 packets.
  t.s.run_until(from_us(200));
  EXPECT_GT(flow->cwnd_bytes(), 40.0 * 1460);
}

TEST(TcpTest, FairShareOnSharedBottleneck) {
  TestNet t(64 * 1538);
  auto a = t.make_flow<TcpFlow>(0, 5);
  auto b = t.make_flow<TcpFlow>(1, 5);  // same destination downlink
  std::int64_t got_a = 0, got_b = 0;
  a->on_delivered = [&](std::int64_t n) { got_a += n; };
  b->on_delivered = [&](std::int64_t n) { got_b += n; };
  a->app_send(1 << 30);
  b->app_send(1 << 30);
  t.s.run_until(from_ms(50));
  const double ratio =
      static_cast<double>(got_a) / static_cast<double>(got_b);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
  // Bottleneck well utilized (NewReno sawtooth keeps it below 100%).
  EXPECT_GT(static_cast<double>(got_a + got_b) * 8 / to_sec(from_ms(50)),
            0.7 * 10e9);
}

TEST(TcpTest, PacingAchievesConfiguredRate) {
  TestNet t;
  auto flow = t.make_flow<TcpFlow>(0, 4);
  std::int64_t delivered = 0;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->set_pacing_rate(2e9);
  flow->app_send(1 << 30);
  t.s.run_until(from_ms(20));
  const double rate = static_cast<double>(delivered) * 8 / to_sec(from_ms(20));
  EXPECT_NEAR(rate, 2e9, 2e9 * 0.06);
}

TEST(TcpTest, PacingRateChangeTakesEffect) {
  TestNet t;
  auto flow = t.make_flow<TcpFlow>(0, 4);
  std::int64_t delivered = 0;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->set_pacing_rate(1e9);
  flow->app_send(1 << 30);
  t.s.run_until(from_ms(10));
  const std::int64_t at_10ms = delivered;
  flow->set_pacing_rate(5e9);
  t.s.run_until(from_ms(20));
  const double rate2 =
      static_cast<double>(delivered - at_10ms) * 8 / to_sec(from_ms(10));
  EXPECT_NEAR(rate2, 5e9, 5e9 * 0.08);
}

TEST(DctcpTest, AlphaTracksMarkingAndCwndShrinks) {
  // ECN threshold low enough that a fast sender sees marks.
  TestNet t(1 << 20, 20 * 1538);
  auto flow = t.make_flow<DctcpFlow>(0, 4);
  auto cross = t.make_flow<DctcpFlow>(1, 4);  // share the downlink
  flow->app_send(1 << 28);
  cross->app_send(1 << 28);
  t.s.run_until(from_ms(20));
  EXPECT_GT(flow->alpha(), 0.0);
  // Queue must be held near the marking threshold, not at the limit: the
  // two flows together would fill a plain drop-tail queue.
  EXPECT_EQ(flow->retransmits() + cross->retransmits(), 0u);
}

TEST(DctcpTest, KeepsQueueNearThresholdVsTcp) {
  const std::int64_t K = 20 * 1538;
  auto run = [&](bool dctcp) {
    TestNet t(1 << 20, dctcp ? K : 0);
    std::unique_ptr<TcpFlow> f;
    if (dctcp) {
      f = t.make_flow<DctcpFlow>(0, 4);
    } else {
      f = t.make_flow<TcpFlow>(0, 4);
    }
    f->app_send(1 << 28);
    // A lone sender's bursts queue at its own uplink (the first 10G
    // link); sample there during steady state.
    const LinkId up = t.clos.host_up_link(t.clos.host(0));
    std::int64_t max_q = 0;
    for (int i = 0; i < 200; ++i) {
      t.s.run_until(from_us(100) * (i + 1) + from_ms(2));
      max_q = std::max(max_q, t.net.link(up).queued_bytes());
    }
    return max_q;
  };
  const std::int64_t q_dctcp = run(true);
  const std::int64_t q_tcp = run(false);
  EXPECT_LT(q_dctcp, 3 * K);       // held near K
  EXPECT_GT(q_tcp, 5 * q_dctcp);   // plain TCP fills the buffer
}

TEST(PfabricTest, ShortFlowPreemptsLongFlow) {
  auto run_with = [&](bool pfabric) {
    topo::ClosConfig cfg = TestNet::default_cfg();
    topo::ClosTopology clos(cfg);
    sim::Simulator s;
    sim::Network net(
        s.events, s.pool, clos, [&](double) -> std::unique_ptr<sim::QueueDisc> {
          if (pfabric) {
            return std::make_unique<sim::PfabricQueue>(24 * 1538);
          }
          return std::make_unique<sim::DropTailQueue>(64 * 1538);
        });
    FlowRegistry reg(net);
    TcpConfig tc;
    if (pfabric) {
      tc.fixed_window_pkts = 24;
      tc.min_rto = from_us(60);
      tc.max_rto = from_us(480);
    }
    // Two long flows from different sources converge on host 5's 10G
    // downlink (the shared bottleneck where the contested queue builds);
    // a short flow from a third source arrives later.
    const auto mk = [&](std::int32_t src,
                        std::int32_t dst) -> std::unique_ptr<TcpFlow> {
      const auto fwd = clos.host_path(clos.host(src), clos.host(dst), 0);
      const auto rev = clos.host_path(clos.host(dst), clos.host(src), 0);
      if (pfabric) {
        return std::make_unique<PfabricFlow>(reg, src, dst, fwd, rev, tc);
      }
      return std::make_unique<TcpFlow>(reg, src, dst, fwd, rev, tc);
    };
    auto long_a = mk(0, 5);
    auto long_b = mk(2, 5);
    auto shrt = mk(1, 5);
    long_a->app_send(1 << 26);
    long_b->app_send(1 << 26);
    s.events.run_until(from_ms(5));
    Time short_done = -1;
    shrt->on_complete = [&] { short_done = s.events.now(); };
    const Time short_start = s.events.now();
    shrt->app_send(10 * 1460);
    shrt->app_close();
    s.events.run_until(from_ms(40));
    return short_done < 0 ? kTimeNever : short_done - short_start;
  };
  const Time with_pfabric = run_with(true);
  const Time with_droptail = run_with(false);
  ASSERT_NE(with_pfabric, kTimeNever);
  ASSERT_NE(with_droptail, kTimeNever);
  // Priority scheduling must beat FIFO behind a full drop-tail queue.
  EXPECT_LT(with_pfabric, with_droptail / 2);
  EXPECT_LT(with_pfabric, from_us(100));
}

TEST(XcpTest, ConvergesToLineRateWithoutLoss) {
  topo::ClosTopology clos(TestNet::default_cfg());
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double cap) {
    return std::make_unique<sim::XcpQueue>(cap);
  });
  FlowRegistry reg(net);
  const auto fwd = clos.host_path(clos.host(0), clos.host(4), 0);
  const auto rev = clos.host_path(clos.host(4), clos.host(0), 0);
  XcpFlow flow(reg, 0, 4, fwd, rev, TcpConfig());
  std::int64_t delivered = 0;
  flow.on_delivered = [&](std::int64_t n) { delivered += n; };
  flow.app_send(1 << 30);
  s.events.run_until(from_ms(30));
  // Last 10ms throughput close to line rate.
  std::int64_t before = delivered;
  s.events.run_until(from_ms(40));
  const double rate =
      static_cast<double>(delivered - before) * 8 / to_sec(from_ms(10));
  EXPECT_GT(rate, 0.7 * 10e9);
  EXPECT_EQ(flow.retransmits(), 0u);
}

TEST(CubicTest, TransfersAndRecovers) {
  TestNet t(32 * 1538);  // small queue to force Cubic's loss response
  auto flow = t.make_flow<CubicFlow>(0, 4);
  bool done = false;
  std::int64_t delivered = 0;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->on_complete = [&] { done = true; };
  flow->app_send(20'000'000);
  flow->app_close();
  t.s.run_until(from_ms(120));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 20'000'000);
  EXPECT_GT(flow->retransmits(), 0u);
}

TEST(CubicTest, SustainsHighUtilization) {
  TestNet t(256 * 1538);
  auto flow = t.make_flow<CubicFlow>(0, 4);
  std::int64_t delivered = 0;
  flow->on_delivered = [&](std::int64_t n) { delivered += n; };
  flow->app_send(1 << 30);
  // Skip the initial slow-start overshoot recovery; measure steady
  // state.
  t.s.run_until(from_ms(15));
  const std::int64_t at_15ms = delivered;
  t.s.run_until(from_ms(40));
  const double rate = static_cast<double>(delivered - at_15ms) * 8 /
                      to_sec(from_ms(25));
  EXPECT_GT(rate, 0.8 * 10e9);
}

TEST(DctcpTest, TwoFlowsShareFairly) {
  TestNet t(1 << 20, 20 * 1538);
  auto a = t.make_flow<DctcpFlow>(0, 5);
  auto b = t.make_flow<DctcpFlow>(1, 5);
  std::int64_t got_a = 0, got_b = 0;
  a->on_delivered = [&](std::int64_t n) { got_a += n; };
  b->on_delivered = [&](std::int64_t n) { got_b += n; };
  a->app_send(1 << 30);
  b->app_send(1 << 30);
  t.s.run_until(from_ms(40));
  const double ratio =
      static_cast<double>(got_a) / static_cast<double>(got_b);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  EXPECT_GT(static_cast<double>(got_a + got_b) * 8 / to_sec(from_ms(40)),
            0.75 * 10e9);
}

TEST(XcpTest, TwoFlowsConvergeToFairShare) {
  // XCP's shuffling moves bandwidth between flows even at full
  // utilization; a latecomer must converge to ~half.
  topo::ClosTopology clos(TestNet::default_cfg());
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double cap) {
    return std::make_unique<sim::XcpQueue>(cap);
  });
  FlowRegistry reg(net);
  const auto mk = [&](std::int32_t src, std::int32_t dst) {
    const auto fwd = clos.host_path(clos.host(src), clos.host(dst), 0);
    const auto rev = clos.host_path(clos.host(dst), clos.host(src), 0);
    return std::make_unique<XcpFlow>(reg, src, dst, fwd, rev,
                                     TcpConfig());
  };
  auto a = mk(0, 5);
  a->app_send(1 << 30);
  s.events.run_until(from_ms(10));
  auto b = mk(1, 5);
  std::int64_t got_b = 0;
  b->on_delivered = [&](std::int64_t n) { got_b += n; };
  b->app_send(1 << 30);
  s.events.run_until(from_ms(25));
  // Measure flow b over a late window.
  const std::int64_t before = got_b;
  s.events.run_until(from_ms(35));
  const double rate_b =
      static_cast<double>(got_b - before) * 8 / to_sec(from_ms(10));
  EXPECT_GT(rate_b, 0.3 * 10e9);
  EXPECT_LT(rate_b, 0.7 * 10e9);
}

TEST(ControlChannelTest, DeliversTypedMessagesInOrder) {
  topo::ClosConfig cfg = TestNet::default_cfg();
  cfg.with_allocator = true;
  TestNet t(1 << 20, 0, cfg);
  TcpConfig cc;
  cc.min_rto = from_us(20);
  cc.max_rto = from_us(30);
  auto up_flow = std::make_unique<TcpFlow>(
      t.reg, 0, -1, t.clos.to_allocator_path(t.clos.host(0), 0),
      t.clos.from_allocator_path(t.clos.host(0), 0), cc);
  ControlChannel ch(std::move(up_flow));
  std::vector<std::uint32_t> got_starts, got_ends;
  ch.on_start = [&](const core::FlowletStartMsg& m) {
    got_starts.push_back(m.flow_key);
  };
  ch.on_end = [&](const core::FlowletEndMsg& m) {
    got_ends.push_back(m.flow_key);
  };
  core::FlowletStartMsg s1;
  s1.flow_key = 101;
  s1.src_host = 0;
  s1.dst_host = 3;
  ch.send_start(s1);
  core::FlowletEndMsg e1;
  e1.flow_key = 101;
  ch.send_end(e1);
  core::FlowletStartMsg s2;
  s2.flow_key = 202;
  ch.send_start(s2);
  t.s.run_until(from_ms(1));
  ASSERT_EQ(got_starts.size(), 2u);
  EXPECT_EQ(got_starts[0], 101u);
  EXPECT_EQ(got_starts[1], 202u);
  ASSERT_EQ(got_ends.size(), 1u);
  EXPECT_EQ(got_ends[0], 101u);
  EXPECT_EQ(ch.payload_bytes_sent(), 16 + 4 + 16);
}

TEST(AllocatorAppTest, EndToEndRateConvergence) {
  // Two Flowtune flows from different sources into one destination: the
  // allocator must pace both to ~half the downlink within a short time.
  topo::ClosConfig cfg = TestNet::default_cfg();
  cfg.with_allocator = true;
  topo::ClosTopology clos(cfg);
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<sim::DropTailQueue>(256 * 1538);
  });
  FlowRegistry reg(net);
  AllocatorApp app(reg, clos, AllocatorAppConfig{});
  app.start();

  TcpConfig tc;
  tc.min_rto = from_ms(1);
  const auto mk = [&](std::int32_t src, std::int32_t dst) {
    const std::uint32_t key = reg.next_id();
    const auto fwd = clos.host_path(clos.host(src), clos.host(dst), key);
    const auto rev = clos.host_path(clos.host(dst), clos.host(src), key);
    return std::make_unique<TcpFlow>(reg, src, dst, fwd, rev, tc);
  };
  auto f1 = mk(0, 6);
  auto f2 = mk(1, 6);
  std::unordered_map<std::uint32_t, TcpFlow*> by_key{
      {f1->flow_id(), f1.get()}, {f2->flow_id(), f2.get()}};
  app.on_rate_update = [&](std::int32_t, const core::RateUpdateMsg& m) {
    by_key[m.flow_key]->set_pacing_rate(decode_rate(m.rate_code));
  };
  for (auto* f : {f1.get(), f2.get()}) {
    core::FlowletStartMsg m;
    m.flow_key = f->flow_id();
    m.src_host = static_cast<std::uint16_t>(f->src_host());
    m.dst_host = static_cast<std::uint16_t>(f->dst_host());
    app.notify_start(f->src_host(), m);
    f->app_send(1 << 30);
  }
  s.events.run_until(from_ms(2));
  // Both paced to ~(0.99 * 10G) / 2.
  EXPECT_NEAR(f1->pacing_rate(), 0.99 * 5e9, 0.99 * 5e9 * 0.05);
  EXPECT_NEAR(f2->pacing_rate(), 0.99 * 5e9, 0.99 * 5e9 * 0.05);
  EXPECT_GT(app.iterations(), 100u);
}

TEST(AllocatorAppTest, WeightedFlowsGetWeightedRates) {
  // The 16-byte start notification carries a weight; the allocator must
  // split the shared bottleneck proportionally (weighted proportional
  // fairness, §2 "different flows can have different utility functions").
  topo::ClosConfig cfg = TestNet::default_cfg();
  cfg.with_allocator = true;
  topo::ClosTopology clos(cfg);
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<sim::DropTailQueue>(256 * 1538);
  });
  FlowRegistry reg(net);
  AllocatorApp app(reg, clos, AllocatorAppConfig{});
  app.start();

  TcpConfig tc;
  tc.min_rto = from_ms(1);
  const auto mk = [&](std::int32_t src, std::int32_t dst) {
    const std::uint32_t key = reg.next_id();
    const auto fwd = clos.host_path(clos.host(src), clos.host(dst), key);
    const auto rev = clos.host_path(clos.host(dst), clos.host(src), key);
    return std::make_unique<TcpFlow>(reg, src, dst, fwd, rev, tc);
  };
  auto f1 = mk(0, 6);
  auto f2 = mk(1, 6);
  std::unordered_map<std::uint32_t, TcpFlow*> by_key{
      {f1->flow_id(), f1.get()}, {f2->flow_id(), f2.get()}};
  app.on_rate_update = [&](std::int32_t, const core::RateUpdateMsg& m) {
    by_key[m.flow_key]->set_pacing_rate(decode_rate(m.rate_code));
  };
  const std::uint16_t weights[2] = {1000, 3000};  // 1 : 3
  TcpFlow* flows[2] = {f1.get(), f2.get()};
  for (int i = 0; i < 2; ++i) {
    core::FlowletStartMsg m;
    m.flow_key = flows[i]->flow_id();
    m.src_host = static_cast<std::uint16_t>(flows[i]->src_host());
    m.dst_host = static_cast<std::uint16_t>(flows[i]->dst_host());
    m.weight_milli = weights[i];
    app.notify_start(flows[i]->src_host(), m);
    flows[i]->app_send(1 << 30);
  }
  s.events.run_until(from_ms(2));
  const double total = 0.99 * 10e9;
  EXPECT_NEAR(f1->pacing_rate(), total / 4, total / 4 * 0.05);
  EXPECT_NEAR(f2->pacing_rate(), 3 * total / 4, total / 4 * 0.05);
}

TEST(ExperimentTest, SmokeAllSchemes) {
  for (const Scheme scheme :
       {Scheme::kFlowtune, Scheme::kDctcp, Scheme::kPfabric,
        Scheme::kSfqCodel, Scheme::kXcp, Scheme::kTcp}) {
    ExpConfig cfg;
    cfg.topo.racks = 2;
    cfg.topo.servers_per_rack = 4;
    cfg.topo.spines = 2;
    cfg.topo.fabric_link_bps = 20e9;
    cfg.traffic.load = 0.4;
    cfg.traffic.workload = wl::Workload::kWeb;
    cfg.traffic.seed = 5;
    cfg.scheme = scheme;
    cfg.warmup = from_ms(1);
    cfg.duration = from_ms(8);
    cfg.drain = from_ms(8);
    const ExpResult r = run_experiment(cfg);
    EXPECT_GT(r.flows_started, 50u) << scheme_name(scheme);
    EXPECT_GT(r.flows_completed, 0.8 * static_cast<double>(r.flows_started))
        << scheme_name(scheme);
    EXPECT_GT(r.goodput_gbps, 0.0) << scheme_name(scheme);
    if (scheme == Scheme::kFlowtune) {
      EXPECT_GT(r.from_allocator_gbps, 0.0);
      EXPECT_GT(r.to_allocator_gbps, 0.0);
    }
  }
}

}  // namespace
}  // namespace ft::transport
