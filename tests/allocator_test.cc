// Tests for the allocator facade: flowlet bookkeeping, thresholded update
// emission (§6.4), capacity headroom, message codecs, and end-to-end
// allocation behaviour on the paper's topology.
#include <gtest/gtest.h>

#include <vector>

#include "common/ratecode.h"
#include "common/rng.h"
#include "core/allocator.h"
#include "core/messages.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace ft::core {
namespace {

std::vector<double> caps_of(const topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) {
    caps.push_back(l.capacity_bps);
  }
  return caps;
}

std::vector<LinkId> to_vec(const topo::Path& p) {
  return {p.begin(), p.end()};
}

TEST(MessagesTest, SizesMatchPaper) {
  EXPECT_EQ(kFlowletStartBytes, 16u);
  EXPECT_EQ(kFlowletEndBytes, 4u);
  // Paper encoding (6 B) plus our 2-byte allocator-epoch stamp, the
  // one deliberate deviation from §6.2 (see core/messages.h).
  EXPECT_EQ(kRateUpdateBytes, 6u + 2u);
}

TEST(MessagesTest, RoundTrip) {
  const FlowletStartMsg start{0xDEADBEEF, 42, 1337, 1'000'000, 500, 3};
  EXPECT_EQ(decode_flowlet_start(encode(start)), start);
  const FlowletEndMsg end{0xCAFEBABE};
  EXPECT_EQ(decode_flowlet_end(encode(end)), end);
  const RateUpdateMsg upd{7, encode_rate(3.3e9)};
  EXPECT_EQ(decode_rate_update(encode(upd)), upd);
}

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest()
      : clos_([] {
          topo::ClosConfig cfg;
          cfg.racks = 4;
          cfg.servers_per_rack = 4;
          cfg.spines = 2;
          cfg.fabric_link_bps = 20e9;
          return cfg;
        }()),
        alloc_(caps_of(clos_), AllocatorConfig{}) {}

  std::uint64_t start_flow(std::uint64_t key, int src, int dst) {
    const auto p = clos_.host_path(clos_.host(src), clos_.host(dst), key);
    EXPECT_TRUE(alloc_.flowlet_start(key, to_vec(p)));
    return key;
  }

  topo::ClosTopology clos_;
  Allocator alloc_;
};

TEST_F(AllocatorTest, DuplicateStartRejected) {
  start_flow(1, 0, 5);
  const auto p = clos_.host_path(clos_.host(0), clos_.host(5), 1);
  EXPECT_FALSE(alloc_.flowlet_start(1, to_vec(p)));
  EXPECT_EQ(alloc_.num_active_flowlets(), 1u);
}

TEST_F(AllocatorTest, UnknownEndRejected) {
  EXPECT_FALSE(alloc_.flowlet_end(99));
  start_flow(1, 0, 5);
  EXPECT_TRUE(alloc_.flowlet_end(1));
  EXPECT_FALSE(alloc_.flowlet_end(1));
  EXPECT_EQ(alloc_.num_active_flowlets(), 0u);
}

TEST_F(AllocatorTest, FirstIterationNotifiesNewFlows) {
  start_flow(1, 0, 5);
  start_flow(2, 1, 9);
  std::vector<RateUpdate> updates;
  alloc_.run_iteration(updates);
  ASSERT_EQ(updates.size(), 2u);
  for (const auto& u : updates) {
    EXPECT_GT(u.rate_bps, 0.0);
    EXPECT_DOUBLE_EQ(u.rate_bps, decode_rate(u.rate_code));
  }
}

TEST_F(AllocatorTest, SteadyStateSuppressesUpdates) {
  start_flow(1, 0, 5);
  start_flow(2, 1, 9);
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 100; ++i) alloc_.run_iteration(updates);
  // After convergence, further iterations emit nothing.
  updates.clear();
  for (int i = 0; i < 50; ++i) alloc_.run_iteration(updates);
  EXPECT_TRUE(updates.empty());
  EXPECT_GT(alloc_.stats().updates_suppressed, 0u);
}

TEST_F(AllocatorTest, ChurnTriggersUpdatesForAffectedFlows) {
  // Two flows from the same source share the host uplink; when one ends,
  // the other's allocation roughly doubles and must be re-notified.
  start_flow(1, 0, 5);
  start_flow(2, 0, 9);
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 200; ++i) alloc_.run_iteration(updates);
  const double before = alloc_.notified_rate(1);
  EXPECT_NEAR(before, 10e9 / 2, 10e9 / 2 * 0.1);

  alloc_.flowlet_end(2);
  updates.clear();
  for (int i = 0; i < 200; ++i) alloc_.run_iteration(updates);
  ASSERT_FALSE(updates.empty());
  const double after = alloc_.notified_rate(1);
  EXPECT_NEAR(after, 10e9 * (1 - 0.01), 10e9 * 0.05);
}

TEST_F(AllocatorTest, HeadroomReserved) {
  // With threshold 0.01 the allocator allocates at most 99% of capacity
  // (§6.4): a single flow on an uncontended path gets ~0.99 * 10G.
  start_flow(1, 0, 5);
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 200; ++i) alloc_.run_iteration(updates);
  EXPECT_LE(alloc_.notified_rate(1), 0.99 * 10e9 * 1.001);
  EXPECT_GT(alloc_.notified_rate(1), 0.99 * 10e9 * 0.97);
}

TEST_F(AllocatorTest, FairShareAcrossSharedBottleneck) {
  // Four flows into the same destination host share its downlink.
  for (int i = 0; i < 4; ++i) start_flow(10 + i, i * 2, 15);
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 300; ++i) alloc_.run_iteration(updates);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(alloc_.notified_rate(10 + i), 0.99 * 10e9 / 4,
                10e9 / 4 * 0.05);
  }
}

TEST_F(AllocatorTest, AllocationsRespectEveryCapacity) {
  // Load up a busy pattern and verify no link is over-allocated after
  // normalization (F-NORM invariant at the allocator level).
  std::uint64_t key = 1;
  for (int s = 0; s < 8; ++s) {
    for (int d = 8; d < 16; d += 2) {
      start_flow(key++, s, d);
    }
  }
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 100; ++i) alloc_.run_iteration(updates);
  for (std::uint64_t k = 1; k < key; ++k) {
    ASSERT_GT(alloc_.notified_rate(k), 0.0);
  }
  // F-NORM invariant: the solver's normalized allocation never exceeds
  // any (headroom-scaled) link capacity. Recompute per-link sums from
  // the per-flow allocated rates.
  const auto& problem = alloc_.problem();
  std::vector<double> per_link(problem.num_links(), 0.0);
  std::size_t active = 0;
  for (FlowIndex s = 0; s < problem.num_slots(); ++s) {
    if (!problem.flow(s).active()) continue;
    ++active;
    // allocated_rate by key: keys were dense 1..key-1 and none ended, so
    // slot order matches insertion order.
    const double r = alloc_.allocated_rate(s + 1);
    for (std::uint32_t l : problem.flow(s).route()) per_link[l] += r;
  }
  EXPECT_EQ(active, static_cast<std::size_t>(key - 1));
  for (std::size_t l = 0; l < per_link.size(); ++l) {
    EXPECT_LE(per_link[l], problem.capacity(l) * (1 + 1e-6));
  }
  // Aggregate check: total notified throughput cannot exceed the sum of
  // destination downlink capacities involved (4 dests x 10G) plus slack.
  double total = 0.0;
  for (std::uint64_t k = 1; k < key; ++k) total += alloc_.notified_rate(k);
  EXPECT_LE(total, 4 * 10e9 * 1.02);
}

TEST_F(AllocatorTest, StatsAreConsistent) {
  start_flow(1, 0, 5);
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 10; ++i) alloc_.run_iteration(updates);
  alloc_.flowlet_end(1);
  const auto& st = alloc_.stats();
  EXPECT_EQ(st.flowlet_starts, 1u);
  EXPECT_EQ(st.flowlet_ends, 1u);
  EXPECT_EQ(st.iterations, 10u);
  EXPECT_EQ(st.updates_emitted, updates.size());
}

TEST(AllocatorThresholdTest, HigherThresholdEmitsFewerUpdates) {
  // Figure 6's mechanism at unit scale: the same churn pattern produces
  // fewer updates at higher notification thresholds.
  topo::ClosConfig cfg;
  cfg.racks = 4;
  cfg.servers_per_rack = 4;
  cfg.spines = 2;
  cfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(cfg);

  auto run = [&](double threshold) {
    AllocatorConfig acfg;
    acfg.threshold = threshold;
    Allocator alloc(caps_of(clos), acfg);
    std::vector<RateUpdate> updates;
    std::uint64_t key = 1;
    // Staircase churn on a shared bottleneck.
    for (int round = 0; round < 30; ++round) {
      const auto p =
          clos.host_path(clos.host(round % 8), clos.host(15), key);
      alloc.flowlet_start(key++, to_vec(p));
      for (int i = 0; i < 20; ++i) alloc.run_iteration(updates);
    }
    return alloc.stats().updates_emitted;
  };

  const auto low = run(0.01);
  const auto high = run(0.05);
  EXPECT_LT(high, low);
}

TEST(AllocatorConfigTest, MultipleItersPerRoundConvergeFaster) {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(cfg);
  const auto run_rounds_to_converge = [&](int iters_per_round) {
    AllocatorConfig acfg;
    acfg.iters_per_round = iters_per_round;
    Allocator alloc(caps_of(clos), acfg);
    const auto p1 = clos.host_path(clos.host(0), clos.host(3), 1);
    const auto p2 = clos.host_path(clos.host(1), clos.host(3), 2);
    alloc.flowlet_start(1, to_vec(p1));
    alloc.flowlet_start(2, to_vec(p2));
    std::vector<RateUpdate> updates;
    const double fair = 0.99 * 5e9;
    for (int round = 1; round <= 500; ++round) {
      alloc.run_iteration(updates);
      if (std::abs(alloc.notified_rate(1) - fair) < fair * 0.01 &&
          std::abs(alloc.notified_rate(2) - fair) < fair * 0.01) {
        return round;
      }
    }
    return -1;
  };
  const int one = run_rounds_to_converge(1);
  const int four = run_rounds_to_converge(4);
  ASSERT_GT(one, 0);
  ASSERT_GT(four, 0);
  EXPECT_LE(four, one);
}

TEST(AllocatorConfigTest, UniformNormalizationOption) {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(cfg);
  AllocatorConfig acfg;
  acfg.norm = NormKind::kUniform;
  Allocator alloc(caps_of(clos), acfg);
  const auto p1 = clos.host_path(clos.host(0), clos.host(3), 1);
  alloc.flowlet_start(1, to_vec(p1));
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 200; ++i) alloc.run_iteration(updates);
  // Single flow: U-NORM also drives it to its bottleneck.
  EXPECT_NEAR(alloc.notified_rate(1), 0.99 * 10e9, 10e9 * 0.02);
}

TEST(AllocatorUtilityTest, WeightedFlowsGetWeightedShares) {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(cfg);
  AllocatorConfig acfg;
  acfg.threshold = 0.0;  // exact notifications
  acfg.reserve_headroom = false;
  Allocator alloc(caps_of(clos), acfg);

  const auto p1 = clos.host_path(clos.host(0), clos.host(3), 1);
  const auto p2 = clos.host_path(clos.host(1), clos.host(3), 2);
  alloc.flowlet_start(1, to_vec(p1), Utility::log_utility(1e9));
  alloc.flowlet_start(2, to_vec(p2), Utility::log_utility(3e9));
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 300; ++i) alloc.run_iteration(updates);
  // Shared bottleneck: dst host downlink (10G), split 1:3.
  EXPECT_NEAR(alloc.notified_rate(1), 2.5e9, 2.5e9 * 0.05);
  EXPECT_NEAR(alloc.notified_rate(2), 7.5e9, 7.5e9 * 0.05);
}

// ---------------------------------------------------------------------
// Backend equivalence (§5): an Allocator driving the multicore
// ParallelNed engine must produce the same rates as the sequential
// NedSolver backend, up to floating-point summation order -- including
// across flowlet churn, where slot recycling re-maps FlowBlock grid
// assignments.

struct BackendPair {
  topo::ClosTopology clos;
  Allocator seq;
  Allocator par;

  BackendPair(std::int32_t blocks, std::int32_t threads,
              AllocatorConfig acfg = {})
      : clos([] {
          topo::ClosConfig cfg;
          cfg.racks = 8;
          cfg.servers_per_rack = 2;
          cfg.spines = 2;
          return topo::ClosTopology(cfg);
        }()),
        seq(caps_of(clos), acfg),
        par(caps_of(clos), acfg,
            parallel_backend(topo::BlockPartition::make(clos, blocks),
                             [&] {
                               ParallelConfig pcfg;
                               pcfg.num_threads = threads;
                               return pcfg;
                             }())) {}

  void start_both(std::uint64_t key, int src, int dst) {
    const auto p = clos.host_path(clos.host(src), clos.host(dst), key);
    ASSERT_TRUE(seq.flowlet_start(key, to_vec(p)));
    ASSERT_TRUE(par.flowlet_start(key, to_vec(p)));
  }
  void end_both(std::uint64_t key) {
    ASSERT_TRUE(seq.flowlet_end(key));
    ASSERT_TRUE(par.flowlet_end(key));
  }
};

TEST(AllocatorBackendTest, ParallelMatchesSequentialSteadyState) {
  BackendPair pair(4, 4);
  Rng rng(17);
  const int hosts = pair.clos.num_hosts();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 1; key <= 48; ++key) {
    const auto src = static_cast<int>(rng.below(hosts));
    auto dst = static_cast<int>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    pair.start_both(key, src, dst);
    keys.push_back(key);
  }
  std::vector<RateUpdate> seq_out;
  std::vector<RateUpdate> par_out;
  for (int round = 0; round < 60; ++round) {
    seq_out.clear();
    par_out.clear();
    pair.seq.run_iteration(seq_out);
    pair.par.run_iteration(par_out);
    for (const std::uint64_t key : keys) {
      const double want = pair.seq.allocated_rate(key);
      ASSERT_NEAR(pair.par.allocated_rate(key), want,
                  std::max(1.0, want) * 1e-9)
          << "round " << round << " key " << key;
    }
  }
  // Quantized notifications agree exactly after convergence.
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(encode_rate(pair.par.notified_rate(key)),
              encode_rate(pair.seq.notified_rate(key)))
        << "key " << key;
  }
}

TEST(AllocatorBackendTest, MultiIterationRoundsMatch) {
  // iters_per_round > 1: the parallel backend skips the piggybacked
  // F-NORM pass on all but the final iteration of the round, which
  // must leave it exactly on the sequential backend's once-per-round
  // normalization.
  AllocatorConfig acfg;
  acfg.iters_per_round = 3;
  BackendPair pair(2, 2, acfg);
  Rng rng(8);
  const int hosts = pair.clos.num_hosts();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 1; key <= 20; ++key) {
    const auto src = static_cast<int>(rng.below(hosts));
    auto dst = static_cast<int>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    pair.start_both(key, src, dst);
    keys.push_back(key);
  }
  std::vector<RateUpdate> sink;
  for (int round = 0; round < 25; ++round) {
    sink.clear();
    pair.seq.run_iteration(sink);
    sink.clear();
    pair.par.run_iteration(sink);
    for (const std::uint64_t key : keys) {
      const double want = pair.seq.allocated_rate(key);
      ASSERT_NEAR(pair.par.allocated_rate(key), want,
                  std::max(1.0, want) * 1e-9)
          << "round " << round << " key " << key;
    }
  }
}

TEST(AllocatorBackendTest, RuntimeCapacityChangesMatchUnderParallel) {
  // §7 closed loop under the multicore backend: set_link_capacity at
  // runtime must keep sequential and parallel allocations equivalent --
  // the SoA demand-bound refresh walks the link->flow adjacency, and the
  // parallel engine reads capacities straight from the shared problem.
  AllocatorConfig acfg;
  acfg.threshold = 0.0;  // every change notified: strictest comparison
  BackendPair pair(4, 4, acfg);
  Rng rng(41);
  const int hosts = pair.clos.num_hosts();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 1; key <= 40; ++key) {
    const auto src = static_cast<int>(rng.below(hosts));
    auto dst = static_cast<int>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    pair.start_both(key, src, dst);
    keys.push_back(key);
  }
  const std::size_t links = pair.seq.problem().num_links();
  std::vector<RateUpdate> sink;
  for (int round = 0; round < 80; ++round) {
    if (round % 5 == 2) {
      // Shrink or restore a random link; both allocators see the same
      // pre-headroom capacity.
      const auto link = rng.below(links);
      const double cap = rng.uniform() < 0.5 ? 4e9 : 10e9;
      pair.seq.set_link_capacity(link, cap);
      pair.par.set_link_capacity(link, cap);
    }
    sink.clear();
    pair.seq.run_iteration(sink);
    sink.clear();
    pair.par.run_iteration(sink);
    for (const std::uint64_t key : keys) {
      const double want = pair.seq.allocated_rate(key);
      ASSERT_NEAR(pair.par.allocated_rate(key), want,
                  std::max(1.0, want) * 1e-9)
          << "round " << round << " key " << key;
    }
  }
}

TEST(AllocatorBackendTest, CapacityChangesAndChurnTogetherUnderParallel) {
  // The combination the service actually produces: flowlet churn
  // (slot recycling re-mapping grid cells) interleaved with runtime
  // capacity changes, under the parallel backend.
  AllocatorConfig acfg;
  acfg.threshold = 0.0;
  BackendPair pair(4, 2, acfg);
  Rng rng(67);
  const int hosts = pair.clos.num_hosts();
  const std::size_t links = pair.seq.problem().num_links();
  std::vector<std::uint64_t> live;
  std::uint64_t next_key = 1;
  std::vector<RateUpdate> sink;
  for (int round = 0; round < 120; ++round) {
    for (int i = 0; i < 3; ++i) {
      if (!live.empty() && rng.uniform() < 0.45) {
        const auto pick = rng.below(live.size());
        pair.end_both(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      } else {
        const auto src = static_cast<int>(rng.below(hosts));
        auto dst = static_cast<int>(rng.below(hosts - 1));
        if (dst >= src) ++dst;
        pair.start_both(next_key, src, dst);
        live.push_back(next_key++);
      }
    }
    if (round % 7 == 3) {
      const auto link = rng.below(links);
      const double cap = rng.uniform(3e9, 12e9);
      pair.seq.set_link_capacity(link, cap);
      pair.par.set_link_capacity(link, cap);
    }
    sink.clear();
    pair.seq.run_iteration(sink);
    sink.clear();
    pair.par.run_iteration(sink);
    for (const std::uint64_t key : live) {
      const double want = pair.seq.allocated_rate(key);
      ASSERT_NEAR(pair.par.allocated_rate(key), want,
                  std::max(1.0, want) * 1e-9)
          << "round " << round << " key " << key;
    }
  }
  EXPECT_EQ(pair.par.stats().flowlet_ends, pair.seq.stats().flowlet_ends);
}

TEST(AllocatorBackendTest, ParallelMatchesSequentialAcrossChurn) {
  AllocatorConfig acfg;
  acfg.threshold = 0.0;  // every change notified: strictest comparison
  BackendPair pair(4, 2, acfg);
  Rng rng(23);
  const int hosts = pair.clos.num_hosts();
  std::vector<std::uint64_t> live;
  std::uint64_t next_key = 1;
  std::vector<RateUpdate> sink;
  for (int round = 0; round < 120; ++round) {
    // A few starts and ends per round keeps the free list busy: ended
    // slots are recycled into new FlowBlock grid cells.
    for (int i = 0; i < 3; ++i) {
      if (!live.empty() && rng.uniform() < 0.45) {
        const auto pick = rng.below(live.size());
        pair.end_both(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      } else {
        const auto src = static_cast<int>(rng.below(hosts));
        auto dst = static_cast<int>(rng.below(hosts - 1));
        if (dst >= src) ++dst;
        pair.start_both(next_key, src, dst);
        live.push_back(next_key++);
      }
    }
    sink.clear();
    pair.seq.run_iteration(sink);
    sink.clear();
    pair.par.run_iteration(sink);
    for (const std::uint64_t key : live) {
      const double want = pair.seq.allocated_rate(key);
      ASSERT_NEAR(pair.par.allocated_rate(key), want,
                  std::max(1.0, want) * 1e-9)
          << "round " << round << " key " << key;
    }
  }
  EXPECT_EQ(pair.par.stats().flowlet_starts,
            pair.seq.stats().flowlet_starts);
  EXPECT_EQ(pair.par.stats().flowlet_ends, pair.seq.stats().flowlet_ends);
}

}  // namespace
}  // namespace ft::core
