// TCP edge cases: stream semantics, abort, reordering tolerance, RTO
// backoff, and packet-pool hygiene (no leaks after a full simulation).
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "topo/clos.h"
#include "transport/pfabric.h"
#include "transport/tcp.h"

namespace ft::transport {
namespace {

struct Net {
  topo::ClosTopology clos;
  sim::Simulator s;
  sim::Network net;
  FlowRegistry reg;

  explicit Net(sim::QueueFactory factory = nullptr)
      : clos([] {
          topo::ClosConfig cfg;
          cfg.racks = 2;
          cfg.servers_per_rack = 2;
          cfg.spines = 2;
          cfg.fabric_link_bps = 10e9;
          return cfg;
        }()),
        net(s.events, s.pool, clos,
            factory ? factory
                    : [](double) -> std::unique_ptr<sim::QueueDisc> {
                        return std::make_unique<sim::DropTailQueue>(1
                                                                    << 20);
                      }),
        reg(net) {}

  std::unique_ptr<TcpFlow> flow(std::int32_t src, std::int32_t dst,
                                TcpConfig cfg = TcpConfig()) {
    const auto fwd = clos.host_path(clos.host(src), clos.host(dst), 0);
    const auto rev = clos.host_path(clos.host(dst), clos.host(src), 0);
    return std::make_unique<TcpFlow>(reg, src, dst, fwd, rev, cfg);
  }
};

TEST(TcpEdgeTest, StreamingMultipleSends) {
  Net n;
  auto f = n.flow(0, 2);
  std::int64_t delivered = 0;
  bool done = false;
  f->on_delivered = [&](std::int64_t b) { delivered += b; };
  f->on_complete = [&] { done = true; };
  // Bytes trickle in over time (a control-channel-style stream).
  f->app_send(100);
  n.s.run_until(from_us(200));
  f->app_send(5000);
  n.s.run_until(from_us(400));
  f->app_send(70000);
  f->app_close();
  n.s.run_until(from_ms(20));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 100 + 5000 + 70000);
}

TEST(TcpEdgeTest, AbortWithNothingInFlightCompletesImmediately) {
  Net n;
  auto f = n.flow(0, 2);
  bool done = false;
  f->on_complete = [&] { done = true; };
  f->app_send(2000);
  n.s.run_until(from_ms(5));  // everything acked
  EXPECT_FALSE(done);         // no close yet
  f->app_abort();
  EXPECT_TRUE(done);  // completes synchronously
}

TEST(TcpEdgeTest, AbortMidTransferCompletesAfterDrain) {
  Net n;
  auto f = n.flow(0, 2);
  bool done = false;
  f->on_complete = [&] { done = true; };
  f->app_send(1 << 24);  // 16 MB, will not finish quickly
  // Abort early, while the window is still modest (no overshoot loss):
  // completion must wait for the in-flight data to be acked.
  n.s.run_until(from_us(100));
  EXPECT_FALSE(done);
  f->app_abort();
  EXPECT_FALSE(done);  // flight still being acked
  n.s.run_until(from_ms(5));
  EXPECT_TRUE(done);
}

TEST(TcpEdgeTest, SurvivesReorderingQueues) {
  // pFabric queues reorder across flows and (slightly) within a flow
  // via retransmission priorities; TCP's ooo tracking must reassemble.
  Net n([](double) -> std::unique_ptr<sim::QueueDisc> {
    return std::make_unique<sim::PfabricQueue>(64 * 1538);
  });
  TcpConfig cfg;
  cfg.fixed_window_pkts = 16;
  cfg.min_rto = from_us(100);
  const auto fwd = n.clos.host_path(n.clos.host(0), n.clos.host(2), 0);
  const auto rev = n.clos.host_path(n.clos.host(2), n.clos.host(0), 0);
  PfabricFlow f(n.reg, 0, 2, fwd, rev, cfg);
  std::int64_t delivered = 0;
  bool done = false;
  f.on_delivered = [&](std::int64_t b) { delivered += b; };
  f.on_complete = [&] { done = true; };
  f.app_send(2'000'000);
  f.app_close();
  n.s.run_until(from_ms(50));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 2'000'000);
}

TEST(TcpEdgeTest, RtoBackoffIsExponentialAndCapped) {
  // Blackhole everything after the first packets with a 1-packet queue
  // shared by data and ACKs in both directions: timeouts then repeat
  // with doubling RTO up to max_rto.
  Net n([](double) -> std::unique_ptr<sim::QueueDisc> {
    return std::make_unique<sim::DropTailQueue>(1 * 1538);
  });
  TcpConfig cfg;
  cfg.min_rto = from_us(100);
  cfg.max_rto = from_us(800);
  cfg.init_cwnd_pkts = 8;  // burst so most of the window drops
  auto f = n.flow(0, 2, cfg);
  f->app_send(64 * 1460);
  f->app_close();
  n.s.run_until(from_ms(30));
  // The transfer makes progress only via timeouts; with the cap at 8x
  // min, 30 ms admits at least ~35 of them if uncapped doubling didn't
  // stall... just assert several happened and the flow kept moving.
  EXPECT_GT(f->timeouts(), 5u);
  EXPECT_GT(f->retransmits(), 5u);
}

TEST(TcpEdgeTest, NoPacketLeaksAfterQuiescence) {
  Net n;
  {
    auto a = n.flow(0, 3);
    auto b = n.flow(1, 2);
    bool done_a = false, done_b = false;
    a->on_complete = [&] { done_a = true; };
    b->on_complete = [&] { done_b = true; };
    a->app_send(500'000);
    a->app_close();
    b->app_send(300'000);
    b->app_close();
    n.s.run_until(from_ms(50));
    EXPECT_TRUE(done_a);
    EXPECT_TRUE(done_b);
  }
  // Everything delivered and acknowledged; every packet recycled.
  EXPECT_EQ(n.s.pool.outstanding(), 0u);
}

TEST(TcpEdgeTest, PacedFlowStopsCleanlyOnAbort) {
  Net n;
  auto f = n.flow(0, 2);
  bool done = false;
  f->on_complete = [&] { done = true; };
  f->set_pacing_rate(1e9);
  f->app_send(1 << 22);
  n.s.run_until(from_ms(3));
  f->app_abort();
  n.s.run_until(from_ms(10));
  EXPECT_TRUE(done);
  n.s.run_until(from_ms(30));
  EXPECT_EQ(n.s.pool.outstanding(), 0u);
}

TEST(TcpEdgeTest, ControlRtoBoundsRespected) {
  // The paper's control channels: 20 us minRTO means a lost notification
  // retransmits within tens of microseconds.
  Net n([](double) -> std::unique_ptr<sim::QueueDisc> {
    // 2-packet queues: first burst partly dropped.
    return std::make_unique<sim::DropTailQueue>(2 * 1538);
  });
  TcpConfig cfg;
  cfg.min_rto = from_us(20);
  cfg.max_rto = from_us(30);
  cfg.init_cwnd_pkts = 6;
  auto f = n.flow(0, 2, cfg);
  bool done = false;
  f->on_complete = [&] { done = true; };
  f->app_send(6 * 1460);
  f->app_close();
  n.s.run_until(from_ms(2));
  EXPECT_TRUE(done);  // losses repaired within ~tens of microsecond RTOs
}

}  // namespace
}  // namespace ft::transport
