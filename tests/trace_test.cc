// Tests for the measurement instruments (sim/trace.*): ideal-FCT model,
// bucket accounting, fairness scores, throughput series, and the path
// delay sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/simulator.h"
#include "topo/clos.h"

namespace ft::sim {
namespace {

topo::ClosConfig paper_cfg() { return topo::ClosConfig(); }

TEST(FlowStatsTest, IdealFctHandComputed) {
  topo::ClosTopology clos(paper_cfg());
  FlowStats stats(clos);
  // 1 MSS intra-rack: serialize 1538B at 10G = 1.2304 us; one-way
  // 2 (host) + 1.5 + 1.5 (links) + 2 (host) = 7 us; ack path back
  // 7 us + 84B at 10G (0.0672 us).
  const Time ideal = stats.ideal_fct(1460, 0, 1);
  const Time expect = tx_time(1538, 10e9)     // data serialization
                      + from_us(7)            // propagation out
                      + from_us(7)            // ack propagation back
                      + tx_time(84, 10e9);    // ack serialization
  EXPECT_EQ(ideal, expect);
}

TEST(FlowStatsTest, IdealFctScalesWithSizeAndHops) {
  topo::ClosTopology clos(paper_cfg());
  FlowStats stats(clos);
  // Larger flows take longer; cross-rack adds 2x1.5us each way.
  EXPECT_GT(stats.ideal_fct(100 * 1460, 0, 1),
            stats.ideal_fct(1460, 0, 1));
  const Time intra = stats.ideal_fct(1460, 0, 1);
  const Time inter = stats.ideal_fct(1460, 0, 16);  // different rack
  EXPECT_EQ(inter - intra, 2 * 2 * from_us(1.5));
}

TEST(FlowStatsTest, BucketsAndScores) {
  topo::ClosTopology clos(paper_cfg());
  FlowStats stats(clos);
  // Two flows: one 1-packet, one 50-packet.
  stats.on_flow_start(0, 1000, 0, 1, 0);
  stats.on_flow_start(1, 50 * 1460, 0, 17, 0);
  stats.on_flow_complete(0, stats.ideal_fct(1000, 0, 1) * 2);
  stats.on_flow_complete(1, stats.ideal_fct(50 * 1460, 0, 17) * 4);
  EXPECT_EQ(stats.completed(), 2u);
  EXPECT_EQ(stats.bucket(wl::SizeBucket::kOnePacket).count(), 1u);
  EXPECT_EQ(stats.bucket(wl::SizeBucket::k10To100).count(), 1u);
  EXPECT_NEAR(stats.bucket(wl::SizeBucket::kOnePacket).p99(), 2.0, 1e-9);
  EXPECT_NEAR(stats.bucket(wl::SizeBucket::k10To100).p99(), 4.0, 1e-9);
  EXPECT_NEAR(stats.mean_normalized_fct(), 3.0, 1e-9);
  // Fairness score = mean log2(rate in Gbit/s).
  const double r0 =
      1000 * 8.0 / to_sec(stats.ideal_fct(1000, 0, 1) * 2) / 1e9;
  const double r1 = 50 * 1460 * 8.0 /
                    to_sec(stats.ideal_fct(50 * 1460, 0, 17) * 4) / 1e9;
  EXPECT_NEAR(stats.fairness_score(),
              (std::log2(r0) + std::log2(r1)) / 2, 1e-9);
}

TEST(ThroughputSeriesTest, BinsBytesIntoGbps) {
  ThroughputSeries series(2, from_ms(1), from_ms(10));
  EXPECT_EQ(series.num_bins(), 10u);
  // 1.25 MB in bin 3 of flow 0 = 10 Gbit/s over 1 ms.
  series.on_bytes(0, 1'250'000, from_ms(3) + from_us(100));
  EXPECT_NEAR(series.gbps(0, 3), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(series.gbps(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(series.gbps(1, 3), 0.0);
  // Out-of-range flow ids and times are ignored, not fatal.
  series.on_bytes(99, 1000, from_ms(1));
  series.on_bytes(0, 1000, from_ms(99));
}

TEST(PathDelaySamplerTest, SeesQueuedBytes) {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  Simulator s;
  topo::ClosTopology clos(cfg);
  Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<DropTailQueue>(1 << 20);
  });
  net.set_delivery_handler([&](Packet* p) { s.pool.free(p); });

  // Pre-load every host-adjacent queue with ~50 packets by sending
  // bursts; then sample.
  const auto burst = [&](std::int32_t src, std::int32_t dst) {
    const auto path = clos.host_path(clos.host(src), clos.host(dst), 0);
    for (int i = 0; i < 50; ++i) {
      Packet* p = s.pool.alloc();
      p->src_host = src;
      p->dst_host = dst;
      p->payload = 1460;
      p->finalize_size();
      p->set_path(path.begin(), path.size());
      net.send(p);
    }
  };
  burst(0, 1);
  burst(1, 0);
  burst(2, 3);
  burst(3, 2);
  PathDelaySampler sampler(net, from_us(10), 16, 1);
  sampler.start(from_us(40));
  s.run_until(from_us(35));  // sample while queues are still draining
  EXPECT_GT(sampler.two_hop().count(), 0u);
  EXPECT_GT(sampler.two_hop().p99(), 1.0);  // tens of us of queue
  s.run_until(from_ms(5));
}

TEST(PathDelaySamplerTest, StopsAtHorizon) {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  Simulator s;
  topo::ClosTopology clos(cfg);
  Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<DropTailQueue>(1 << 20);
  });
  PathDelaySampler sampler(net, from_us(100), 4, 1);
  sampler.start(from_ms(1));
  s.run_until(from_ms(50));
  // ~10 sampling ticks, 4 2-hop samples each; none after the horizon.
  EXPECT_LE(sampler.two_hop().count(), 40u);
  EXPECT_GT(sampler.two_hop().count(), 0u);
}

}  // namespace
}  // namespace ft::sim
