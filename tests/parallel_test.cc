// Tests for the multicore FlowBlock/LinkBlock engine (§5): bit-level
// behavioural equivalence with the sequential NED solver (up to fp
// summation order), F-NORM piggybacking, flow churn bookkeeping, and
// determinism across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/parallel.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace ft::core {
namespace {

struct Instance {
  topo::ClosTopology clos;
  topo::BlockPartition part;
  std::vector<double> caps;

  Instance(std::int32_t racks, std::int32_t servers, std::int32_t spines,
           std::int32_t blocks)
      : clos([&] {
          topo::ClosConfig cfg;
          cfg.racks = racks;
          cfg.servers_per_rack = servers;
          cfg.spines = spines;
          return topo::ClosTopology(cfg);
        }()),
        part(topo::BlockPartition::make(clos, blocks)) {
    for (const auto& l : clos.graph().links()) {
      caps.push_back(l.capacity_bps);
    }
  }
};

struct FlowSpec {
  std::vector<LinkId> route;
  std::int32_t src_block;
  std::int32_t dst_block;
};

std::vector<FlowSpec> random_flows(const Instance& inst, std::size_t count,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowSpec> specs;
  const auto hosts = static_cast<std::uint64_t>(inst.clos.num_hosts());
  for (std::size_t i = 0; i < count; ++i) {
    const auto s = static_cast<std::int32_t>(rng.below(hosts));
    auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
    if (d >= s) ++d;
    const auto path =
        inst.clos.host_path(inst.clos.host(s), inst.clos.host(d),
                            rng.next());
    FlowSpec spec;
    spec.route = {path.begin(), path.end()};
    spec.src_block = inst.part.block_of_host(inst.clos, inst.clos.host(s));
    spec.dst_block = inst.part.block_of_host(inst.clos, inst.clos.host(d));
    specs.push_back(std::move(spec));
  }
  return specs;
}

class ParallelEquivalenceP
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelEquivalenceP, MatchesSequentialNed) {
  const auto [blocks, threads] = GetParam();
  Instance inst(8, 2, 2, blocks);
  const auto specs = random_flows(inst, 60, 42);

  // Sequential reference.
  NumProblem seq_p(inst.caps);
  NedSolver seq(seq_p, 1.0);
  for (const auto& s : specs) {
    seq_p.add_flow(s.route, Utility::log_utility());
  }

  // Parallel engine.
  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = blocks;
  cfg.num_threads = threads;
  cfg.gamma = 1.0;
  ParallelNed par(par_p, inst.part, cfg);
  for (const auto& s : specs) {
    const FlowIndex idx = par_p.add_flow(s.route, Utility::log_utility());
    par.assign_flow(idx, s.src_block, s.dst_block);
  }

  for (int it = 0; it < 50; ++it) {
    seq.iterate();
    par.iterate();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      ASSERT_NEAR(par.rates()[s], seq.rates()[s],
                  std::max(1.0, seq.rates()[s]) * 1e-9)
          << "iter " << it << " flow " << s;
    }
  }
  // Prices agree too.
  for (std::size_t l = 0; l < inst.caps.size(); ++l) {
    EXPECT_NEAR(par.prices()[l], seq.prices()[l],
                std::max(1e-12, seq.prices()[l]) * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlocksAndThreads, ParallelEquivalenceP,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(2, 2), std::make_tuple(2, 4),
                      std::make_tuple(4, 1), std::make_tuple(4, 4),
                      std::make_tuple(4, 16), std::make_tuple(8, 4)));

TEST(ParallelNormTest, FNormMatchesSequential) {
  Instance inst(4, 2, 2, 4);
  const auto specs = random_flows(inst, 40, 7);

  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 4;
  cfg.num_threads = 4;
  ParallelNed par(par_p, inst.part, cfg);
  for (const auto& s : specs) {
    par.assign_flow(par_p.add_flow(s.route, {}), s.src_block,
                    s.dst_block);
  }
  for (int it = 0; it < 30; ++it) par.iterate();

  // Reference normalization of the same rates.
  std::vector<double> expect(par_p.num_slots());
  f_norm(par_p, par.rates(), expect);
  for (std::size_t s = 0; s < expect.size(); ++s) {
    EXPECT_NEAR(par.norm_rates()[s], expect[s],
                std::max(1.0, expect[s]) * 1e-9);
  }
}

TEST(ParallelChurnTest, AssignUnassignKeepsEquivalence) {
  Instance inst(4, 2, 2, 2);
  auto specs = random_flows(inst, 30, 99);

  NumProblem seq_p(inst.caps);
  NedSolver seq(seq_p, 1.0);
  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 2;
  cfg.num_threads = 2;
  ParallelNed par(par_p, inst.part, cfg);

  Rng rng(5);
  std::vector<FlowIndex> live_seq, live_par;
  std::size_t next = 0;
  for (int round = 0; round < 60; ++round) {
    const bool add =
        live_seq.empty() || (next < specs.size() && rng.uniform() < 0.6);
    if (add && next < specs.size()) {
      const auto& s = specs[next++];
      live_seq.push_back(seq_p.add_flow(s.route, {}));
      const FlowIndex idx = par_p.add_flow(s.route, {});
      par.assign_flow(idx, s.src_block, s.dst_block);
      live_par.push_back(idx);
    } else if (!live_seq.empty()) {
      const auto pick = rng.below(live_seq.size());
      seq_p.remove_flow(live_seq[pick]);
      par.unassign_flow(live_par[pick]);
      par_p.remove_flow(live_par[pick]);
      live_seq.erase(live_seq.begin() + static_cast<std::ptrdiff_t>(pick));
      live_par.erase(live_par.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    for (int i = 0; i < 3; ++i) {
      seq.iterate();
      par.iterate();
    }
    for (std::size_t i = 0; i < live_seq.size(); ++i) {
      ASSERT_NEAR(par.rates()[live_par[i]], seq.rates()[live_seq[i]],
                  std::max(1.0, seq.rates()[live_seq[i]]) * 1e-9)
          << "round " << round;
    }
  }
}

TEST(ParallelChurnTest, SlotRecyclingUnderHeavyInterleavedChurn) {
  // Regression for the free-list reuse path the allocator service
  // exercises: bursts of unassign/assign between iterations, mass
  // removals (a disconnecting endpoint ends everything it owns at
  // once), and recycled slots landing in *different* grid cells than
  // their previous flow. The engine must keep matching the sequential
  // solver and the reference F-NORM throughout.
  Instance inst(8, 2, 2, 4);
  const auto specs = random_flows(inst, 200, 4242);

  NumProblem seq_p(inst.caps);
  NedSolver seq(seq_p, 1.0);
  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 4;
  cfg.num_threads = 4;
  ParallelNed par(par_p, inst.part, cfg);

  Rng rng(31337);
  // live[i] = {seq slot, par slot, spec index}.
  struct Live {
    FlowIndex seq_slot;
    FlowIndex par_slot;
  };
  std::vector<Live> live;
  const auto add_one = [&] {
    const auto& s = specs[rng.below(specs.size())];
    const FlowIndex si = seq_p.add_flow(s.route, {});
    const FlowIndex pi = par_p.add_flow(s.route, {});
    ASSERT_EQ(si, pi);  // identical churn order => identical free lists
    par.assign_flow(pi, s.src_block, s.dst_block);
    live.push_back({si, pi});
  };
  const auto remove_at = [&](std::size_t pick) {
    par.unassign_flow(live[pick].par_slot);
    par_p.remove_flow(live[pick].par_slot);
    seq_p.remove_flow(live[pick].seq_slot);
    live[pick] = live.back();
    live.pop_back();
  };

  for (int i = 0; i < 40; ++i) add_one();
  for (int round = 0; round < 80; ++round) {
    // Burst of interleaved churn between iterations: several slots are
    // freed and immediately recycled by the next add.
    const int churn = 1 + static_cast<int>(rng.below(8));
    for (int c = 0; c < churn; ++c) {
      if (!live.empty() && rng.uniform() < 0.5) {
        remove_at(rng.below(live.size()));
      } else {
        add_one();
      }
    }
    if (round == 40) {
      // Mass removal: everything an endpoint owned ends at once.
      while (live.size() > 5) remove_at(live.size() - 1);
    }
    seq.iterate();
    par.iterate();
    for (const Live& f : live) {
      ASSERT_NEAR(par.rates()[f.par_slot], seq.rates()[f.seq_slot],
                  std::max(1.0, seq.rates()[f.seq_slot]) * 1e-9)
          << "round " << round << " slot " << f.par_slot;
    }
    // Piggybacked F-NORM stays consistent with the reference
    // normalization of the same rates under recycling too.
    std::vector<double> expect(par_p.num_slots());
    f_norm(par_p, par.rates(), expect);
    for (const Live& f : live) {
      ASSERT_NEAR(par.norm_rates()[f.par_slot], expect[f.par_slot],
                  std::max(1.0, expect[f.par_slot]) * 1e-9)
          << "round " << round << " slot " << f.par_slot;
    }
  }
}

TEST(ParallelDeterminismTest, SameResultsAcrossThreadCounts) {
  Instance inst(8, 2, 2, 4);
  const auto specs = random_flows(inst, 50, 1234);

  auto run = [&](std::int32_t threads) {
    NumProblem p(inst.caps);
    ParallelConfig cfg;
    cfg.num_blocks = 4;
    cfg.num_threads = threads;
    ParallelNed par(p, inst.part, cfg);
    for (const auto& s : specs) {
      par.assign_flow(p.add_flow(s.route, {}), s.src_block, s.dst_block);
    }
    for (int i = 0; i < 40; ++i) par.iterate();
    return std::vector<double>(par.rates().begin(), par.rates().end());
  };

  const auto r1 = run(1);
  const auto r4 = run(4);
  const auto r16 = run(16);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    // Identical arithmetic regardless of thread count (worker order is
    // fixed): bitwise equality expected.
    EXPECT_DOUBLE_EQ(r1[i], r4[i]);
    EXPECT_DOUBLE_EQ(r1[i], r16[i]);
  }
}

TEST(ParallelUtilityTest, AlphaFairAndFixedDemandMatchSequential) {
  // The parallel engine must agree with the sequential solver for the
  // whole utility family, including fixed-demand external flows.
  Instance inst(4, 2, 2, 2);
  Rng rng(21);
  NumProblem seq_p(inst.caps);
  NedSolver seq(seq_p, 1.0);
  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 2;
  cfg.num_threads = 2;
  ParallelNed par(par_p, inst.part, cfg);

  const auto specs = random_flows(inst, 24, 77);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Utility util;
    switch (i % 4) {
      case 0:
        util = Utility::log_utility(1e9);
        break;
      case 1:
        util = Utility::alpha_fair(2.0, 1e19);
        break;
      case 2:
        util = Utility::alpha_fair(0.5, 1e5);
        break;
      case 3:
        util = Utility::fixed_demand(rng.uniform(0.5e9, 2e9));
        break;
    }
    seq_p.add_flow(specs[i].route, util);
    const FlowIndex idx = par_p.add_flow(specs[i].route, util);
    par.assign_flow(idx, specs[i].src_block, specs[i].dst_block);
  }
  for (int it = 0; it < 50; ++it) {
    seq.iterate();
    par.iterate();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      ASSERT_NEAR(par.rates()[s], seq.rates()[s],
                  std::max(1.0, seq.rates()[s]) * 1e-9)
          << "iter " << it;
    }
  }
}

TEST(CpuMapTest, LayoutAndDescribe) {
  CpuMapConfig cfg;
  cfg.enable = true;
  cfg.cpus = {0, 2, 4};
  const auto map = CpuMap::make(5, cfg);
  ASSERT_TRUE(map.enabled());
  EXPECT_EQ(map.rows(), 5);
  // Rows wrap round-robin over the explicit CPU list.
  EXPECT_EQ(map.cpu_for_row(0), 0);
  EXPECT_EQ(map.cpu_for_row(1), 2);
  EXPECT_EQ(map.cpu_for_row(2), 4);
  EXPECT_EQ(map.cpu_for_row(3), 0);
  EXPECT_EQ(map.describe(), "0,2,4,0,2");
  // Disabled config -> no-op map.
  const auto off = CpuMap::make(4, CpuMapConfig{});
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.cpu_for_row(0), -1);
  EXPECT_EQ(off.describe(), "");
}

TEST(CpuMapTest, DefaultPoolCoversOnlineCpus) {
  CpuMapConfig cfg;
  cfg.enable = true;
  const int ncpu = CpuMap::num_cpus();
  const auto map = CpuMap::make(2 * ncpu, cfg);
  ASSERT_TRUE(map.enabled());
  for (std::int32_t r = 0; r < map.rows(); ++r) {
    EXPECT_GE(map.cpu_for_row(r), 0);
    EXPECT_LT(map.cpu_for_row(r), ncpu);
  }
  // NUMA discovery always yields at least one node covering the CPUs.
  const auto nodes = CpuMap::numa_nodes();
  ASSERT_FALSE(nodes.empty());
  std::size_t total = 0;
  for (const auto& n : nodes) total += n.size();
  EXPECT_GE(total, static_cast<std::size_t>(ncpu));
}

TEST(CpuMapTest, ParseCpulist) {
  std::vector<int> cpus;
  EXPECT_TRUE(CpuMap::parse_cpulist("0-3,8,10-11", cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  cpus.clear();
  EXPECT_TRUE(CpuMap::parse_cpulist("5", cpus));
  EXPECT_EQ(cpus, (std::vector<int>{5}));
  cpus.clear();
  EXPECT_TRUE(CpuMap::parse_cpulist("", cpus));
  EXPECT_TRUE(cpus.empty());
  cpus.clear();
  EXPECT_FALSE(CpuMap::parse_cpulist("1,x", cpus));
  cpus.clear();
  EXPECT_FALSE(CpuMap::parse_cpulist("3-", cpus));
  cpus.clear();
  EXPECT_FALSE(CpuMap::parse_cpulist("5-3", cpus));
  cpus.clear();
  EXPECT_FALSE(CpuMap::parse_cpulist("-2", cpus));
}

TEST(CpuMapTest, PinCurrentThreadOnCpu0) {
  // CPU 0 always exists; pinning the calling thread must succeed on
  // Linux (and is allowed to report false elsewhere).
#if defined(__linux__)
  EXPECT_TRUE(CpuMap::pin_current_thread(0));
#endif
  EXPECT_FALSE(CpuMap::pin_current_thread(-1));
}

TEST(ParallelPinnedTest, PinnedWorkersMatchSequential) {
  // §6.1 pinning changes scheduling only: the pinned engine must stay
  // bit-identical (same worker arithmetic, same aggregation order) to
  // the sequential solver within fp summation order.
  Instance inst(8, 2, 2, 4);
  const auto specs = random_flows(inst, 60, 911);

  NumProblem seq_p(inst.caps);
  NedSolver seq(seq_p, 1.0);
  for (const auto& s : specs) {
    seq_p.add_flow(s.route, Utility::log_utility());
  }

  NumProblem par_p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 4;
  cfg.num_threads = 4;  // one thread per block row
  cfg.pin.enable = true;
  ParallelNed par(par_p, inst.part, cfg);
  EXPECT_FALSE(par.pinning().empty());
  for (const auto& s : specs) {
    const FlowIndex idx = par_p.add_flow(s.route, Utility::log_utility());
    par.assign_flow(idx, s.src_block, s.dst_block);
  }

  for (int it = 0; it < 40; ++it) {
    seq.iterate();
    par.iterate();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      ASSERT_NEAR(par.rates()[s], seq.rates()[s],
                  std::max(1.0, seq.rates()[s]) * 1e-9)
          << "iter " << it << " flow " << s;
    }
  }
}

TEST(ParallelTimingTest, ReportsIterationTime) {
  Instance inst(4, 2, 2, 2);
  NumProblem p(inst.caps);
  ParallelConfig cfg;
  cfg.num_blocks = 2;
  cfg.num_threads = 2;
  ParallelNed par(p, inst.part, cfg);
  const auto specs = random_flows(inst, 20, 3);
  for (const auto& s : specs) {
    par.assign_flow(p.add_flow(s.route, {}), s.src_block, s.dst_block);
  }
  par.iterate();
  EXPECT_GT(par.last_iter_seconds(), 0.0);
}

}  // namespace
}  // namespace ft::core
