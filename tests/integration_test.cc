// Cross-module integration tests: full packet-level experiments
// exercising the paper's end-to-end claims at miniature scale, plus
// failure injection (allocator outage, extreme loss).
#include <gtest/gtest.h>

#include <memory>

#include "common/ratecode.h"
#include "sim/simulator.h"
#include "topo/clos.h"
#include "transport/control.h"
#include "transport/experiment.h"

namespace ft::transport {
namespace {

ExpConfig mini_config(Scheme scheme, double load, std::uint64_t seed = 3) {
  ExpConfig cfg;
  cfg.topo.racks = 4;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.spines = 2;
  cfg.topo.fabric_link_bps = 20e9;
  cfg.traffic.load = load;
  cfg.traffic.workload = wl::Workload::kWeb;
  cfg.traffic.seed = seed;
  cfg.scheme = scheme;
  cfg.warmup = from_ms(1);
  cfg.duration = from_ms(6);
  cfg.drain = from_ms(8);
  return cfg;
}

TEST(IntegrationTest, FlowtuneKeepsQueuesShorterThanDctcp) {
  // Result (G) at miniature scale.
  const ExpResult ft_r = run_experiment(mini_config(Scheme::kFlowtune, 0.6));
  const ExpResult dc_r = run_experiment(mini_config(Scheme::kDctcp, 0.6));
  EXPECT_LT(ft_r.p99_queue_4hop_us * 3, dc_r.p99_queue_4hop_us);
  EXPECT_LT(ft_r.p99_queue_4hop_us, 40.0);
}

TEST(IntegrationTest, DropRateOrdering) {
  // Result (H): sfqCoDel and pFabric drop; Flowtune and XCP do not.
  const double high = 0.8;
  const ExpResult ft_r =
      run_experiment(mini_config(Scheme::kFlowtune, high));
  const ExpResult pf = run_experiment(mini_config(Scheme::kPfabric, high));
  const ExpResult sc =
      run_experiment(mini_config(Scheme::kSfqCodel, high));
  const ExpResult xcp = run_experiment(mini_config(Scheme::kXcp, high));
  EXPECT_LT(ft_r.dropped_gbps, 0.05);
  EXPECT_LT(xcp.dropped_gbps, 0.05);
  EXPECT_GT(pf.dropped_gbps, 10 * (ft_r.dropped_gbps + 0.01));
  EXPECT_GT(sc.dropped_gbps, 10 * (ft_r.dropped_gbps + 0.01));
}

TEST(IntegrationTest, FlowtuneShortFlowTailBeatsDctcp) {
  // Result (F) at miniature scale: p99 normalized FCT for <=10-packet
  // flows is several times lower under Flowtune.
  const ExpResult ft_r =
      run_experiment(mini_config(Scheme::kFlowtune, 0.6));
  const ExpResult dc = run_experiment(mini_config(Scheme::kDctcp, 0.6));
  const auto& ft_b =
      ft_r.buckets[static_cast<std::size_t>(wl::SizeBucket::k1To10)];
  const auto& dc_b =
      dc.buckets[static_cast<std::size_t>(wl::SizeBucket::k1To10)];
  ASSERT_GT(ft_b.count, 50u);
  ASSERT_GT(dc_b.count, 50u);
  EXPECT_LT(ft_b.p99_norm_fct * 2, dc_b.p99_norm_fct);
}

TEST(IntegrationTest, NormalizedFctNeverBelowIdeal) {
  // The ideal-FCT model must be a true lower bound: no flow completes
  // faster than the empty-network time.
  for (const Scheme s : {Scheme::kFlowtune, Scheme::kPfabric}) {
    const ExpResult r = run_experiment(mini_config(s, 0.3));
    for (const auto& b : r.buckets) {
      if (b.count == 0) continue;
      EXPECT_GE(b.p50_norm_fct, 0.999) << r.scheme;
    }
  }
}

TEST(IntegrationTest, ExperimentsAreDeterministic) {
  const ExpResult a = run_experiment(mini_config(Scheme::kFlowtune, 0.5));
  const ExpResult b = run_experiment(mini_config(Scheme::kFlowtune, 0.5));
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_DOUBLE_EQ(a.dropped_gbps, b.dropped_gbps);
  for (std::int32_t i = 0; i < wl::kNumSizeBuckets; ++i) {
    EXPECT_DOUBLE_EQ(a.buckets[i].p99_norm_fct, b.buckets[i].p99_norm_fct);
  }
}

TEST(IntegrationTest, ControlOverheadGrowsWithLoad) {
  const ExpResult low = run_experiment(mini_config(Scheme::kFlowtune, 0.2));
  const ExpResult high =
      run_experiment(mini_config(Scheme::kFlowtune, 0.8));
  EXPECT_GT(high.to_allocator_gbps, low.to_allocator_gbps);
  EXPECT_GT(high.from_allocator_gbps, low.from_allocator_gbps);
  // Note: measured on the allocator's links, both directions include
  // TCP ACKs of the opposite channel, so the paper's from >> to
  // asymmetry (message bytes only) is asserted at the message level in
  // harness_test.cc instead.
  EXPECT_GT(high.from_allocator_gbps, 0.8 * high.to_allocator_gbps);
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

TEST(FailureTest, AllocatorOutageLeavesRatesUsable) {
  // §2 fault tolerance: "if the allocator fails ... endpoint congestion
  // control takes over, using the previously allocated rates as a
  // starting point". Endpoints keep their last paced rate; traffic
  // continues without a stall.
  topo::ClosConfig tcfg;
  tcfg.racks = 2;
  tcfg.servers_per_rack = 4;
  tcfg.spines = 2;
  tcfg.fabric_link_bps = 20e9;
  tcfg.with_allocator = true;
  topo::ClosTopology clos(tcfg);
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<sim::DropTailQueue>(512 * 1538);
  });
  FlowRegistry reg(net);
  auto app = std::make_unique<AllocatorApp>(reg, clos,
                                            AllocatorAppConfig{});
  // NOTE: app->start() is never called after the "failure" below.
  app->start();

  TcpConfig tc;
  tc.min_rto = from_ms(1);
  const std::uint32_t key = reg.next_id();
  const auto fwd = clos.host_path(clos.host(0), clos.host(6), key);
  const auto rev = clos.host_path(clos.host(6), clos.host(0), key);
  TcpFlow flow(reg, 0, 6, fwd, rev, tc);
  std::int64_t delivered = 0;
  flow.on_delivered = [&](std::int64_t n) { delivered += n; };
  app->on_rate_update = [&](std::int32_t, const core::RateUpdateMsg& m) {
    if (m.flow_key == key) flow.set_pacing_rate(decode_rate(m.rate_code));
  };
  core::FlowletStartMsg m;
  m.flow_key = key;
  m.src_host = 0;
  m.dst_host = 6;
  app->notify_start(0, m);
  flow.app_send(std::int64_t{1} << 30);

  s.run_until(from_ms(2));
  const double rate_before = flow.pacing_rate();
  EXPECT_GT(rate_before, 9e9 * 0.9);  // ~ full host link

  // Allocator "crashes": iterations stop, no more updates are sent.
  // Existing allocations remain in force at the endpoint.
  app->stop();
  const std::int64_t at_crash = delivered;
  s.run_until(from_ms(6));
  const double rate_after = static_cast<double>(delivered - at_crash) *
                            8.0 / to_sec(from_ms(4));
  EXPECT_GT(rate_after, rate_before * 0.9);  // no stall, no collapse
}

TEST(FailureTest, TcpSurvivesNearTotalBufferCollapse) {
  // Extreme loss: 2-packet queues everywhere. The transfer must still
  // complete via retransmission (liveness under pathological loss).
  topo::ClosConfig tcfg;
  tcfg.racks = 2;
  tcfg.servers_per_rack = 2;
  tcfg.spines = 1;
  tcfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(tcfg);
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<sim::DropTailQueue>(2 * 1538);
  });
  FlowRegistry reg(net);
  TcpConfig tc;
  tc.min_rto = from_us(200);
  tc.max_rto = from_ms(2);
  const auto fwd = clos.host_path(clos.host(0), clos.host(3), 0);
  const auto rev = clos.host_path(clos.host(3), clos.host(0), 0);
  TcpFlow flow(reg, 0, 3, fwd, rev, tc);
  bool done = false;
  std::int64_t delivered = 0;
  flow.on_delivered = [&](std::int64_t n) { delivered += n; };
  flow.on_complete = [&] { done = true; };
  flow.app_send(400'000);
  flow.app_close();
  s.run_until(from_ms(400));
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 400'000);
  EXPECT_GT(flow.retransmits(), 0u);
}

TEST(FailureTest, LateRateUpdatesForDeadFlowsAreIgnored) {
  // Rate updates racing with flowlet completion must not crash or
  // resurrect state (the allocator may emit updates for a flow whose
  // end notification is still in flight).
  topo::ClosConfig tcfg;
  tcfg.racks = 2;
  tcfg.servers_per_rack = 4;
  tcfg.spines = 2;
  tcfg.fabric_link_bps = 20e9;
  ExpConfig cfg;
  cfg.topo = tcfg;
  cfg.traffic.load = 0.7;
  cfg.traffic.workload = wl::Workload::kWeb;
  cfg.traffic.seed = 11;
  cfg.scheme = Scheme::kFlowtune;
  cfg.warmup = from_ms(1);
  cfg.duration = from_ms(5);
  // Many short flows ending constantly: exercises the race. Passing ==
  // not crashing and completing most flows.
  const ExpResult r = run_experiment(cfg);
  EXPECT_GT(r.flows_completed,
            0.8 * static_cast<double>(r.flows_started));
}

}  // namespace
}  // namespace ft::transport
