// Unit tests for src/common: time conversions, RNG determinism and
// distribution sanity, streaming stats, percentile estimation, the
// 16-bit rate codec, and wire-size accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/flat_map.h"
#include "common/ratecode.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "common/wire.h"

namespace ft {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_EQ(from_ms(2.5), 2 * kMillisecond + 500 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_us(kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_sec(kSecond), 1.0);
}

TEST(TimeTest, TxTimeMatchesLinkSpeeds) {
  // 1500 bytes at 10 Gbit/s = 1.2 us exactly.
  EXPECT_EQ(tx_time(1500, 10e9), 1'200 * kNanosecond);
  // 84 bytes (minimum wire frame) at 40 Gbit/s = 16.8 ns.
  EXPECT_EQ(tx_time(84, 40e9), 16'800);  // picoseconds
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowIsUnbiasedAcrossRange) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r(99);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(3);
  Rng child = parent.fork();
  // Child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 3);
}

TEST(StreamingStatsTest, Moments) {
  StreamingStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(StreamingStatsTest, MergeMatchesCombined) {
  Rng r(5);
  StreamingStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StreamingStatsTest, MergeHandlesEmptySides) {
  // Regression: merging with an empty side must not fold the empty
  // side's zero-initialized min/max into the result (a merge of
  // all-negative samples with an empty accumulator would otherwise
  // report max = 0).
  StreamingStats neg;
  for (double x : {-5.0, -3.0, -8.0}) neg.add(x);

  StreamingStats a = neg;
  a.merge(StreamingStats{});  // non-empty <- empty
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), -8.0);
  EXPECT_DOUBLE_EQ(a.max(), -3.0);

  StreamingStats b;
  b.merge(neg);  // empty <- non-empty
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.min(), -8.0);
  EXPECT_DOUBLE_EQ(b.max(), -3.0);
  EXPECT_DOUBLE_EQ(b.mean(), neg.mean());

  StreamingStats c;
  c.merge(StreamingStats{});  // empty <- empty
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.max(), 0.0);
}

TEST(PercentileTest, ExactQuantiles) {
  PercentileSampler p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.p50(), 50.5, 1e-9);
  EXPECT_NEAR(p.p99(), 99.01, 1e-9);
}

TEST(PercentileTest, AddAfterQueryResorts) {
  PercentileSampler p;
  p.add(10);
  p.add(20);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 20.0);
  p.add(5);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 5.0);
}

TEST(PercentileTest, SortFastPathMatchesUnsortedPath) {
  Rng rng(17);
  PercentileSampler p;
  for (int i = 0; i < 10000; ++i) p.add(rng.uniform(0, 1000));
  const double p50_copy = p.p50();
  const double p99_copy = p.p99();
  p.sort();  // zero-copy path from here on
  EXPECT_DOUBLE_EQ(p.p50(), p50_copy);
  EXPECT_DOUBLE_EQ(p.p99(), p99_copy);
}

TEST(PercentileTest, ConcurrentPercentileOnSharedSampler) {
  // Regression: percentile() used to cache a sort through `mutable`
  // members, so two threads querying a shared (logically const) sampler
  // raced on the sample vector. It now never mutates -- this test is
  // the TSan witness.
  PercentileSampler p;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) p.add(rng.uniform(0, 100));
  const PercentileSampler& shared = p;
  const double want_p50 = shared.p50();
  const double want_p99 = shared.p99();
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(shared.p50(), want_p50);
        EXPECT_DOUBLE_EQ(shared.p99(), want_p99);
      }
    });
  }
  for (auto& t : readers) t.join();
}

TEST(TimeSeriesBinsTest, BinningAndRates) {
  TimeSeriesBins bins(0.1, 10);
  bins.add(0.05, 3.0);
  bins.add(0.06, 1.0);
  bins.add(0.95, 2.0);
  bins.add(5.0, 100.0);  // out of range: dropped
  EXPECT_DOUBLE_EQ(bins.bin_sum(0), 4.0);
  EXPECT_DOUBLE_EQ(bins.bin_sum(9), 2.0);
  EXPECT_DOUBLE_EQ(bins.bin_rate(0), 40.0);
}

TEST(RateCodeTest, RoundTripAccuracy) {
  // All rates the datacenter cares about encode within the documented
  // relative error.
  for (double rate = 1e6; rate <= 100e9; rate *= 1.37) {
    const double decoded = decode_rate(encode_rate(rate));
    EXPECT_NEAR(decoded, rate, rate * kRateCodeMaxRelError * 2)
        << "rate=" << rate;
  }
}

TEST(RateCodeTest, EdgeCases) {
  EXPECT_EQ(encode_rate(0.0), 0);
  EXPECT_EQ(encode_rate(-5.0), 0);
  EXPECT_DOUBLE_EQ(decode_rate(0), 0.0);
  // Tiny rates below granularity go to zero.
  EXPECT_EQ(encode_rate(10.0), 0);
  // Monotonicity over a broad sweep.
  double prev = -1.0;
  for (double rate = 1e3; rate <= 1e13; rate *= 1.1) {
    const double d = decode_rate(encode_rate(rate));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(RateCodeTest, CodesAreCompact) {
  // Distinct rates 2% apart must map to distinct codes (threshold 0.01
  // notifications must survive quantization).
  const double r1 = 1e9;
  const double r2 = 1.02e9;
  EXPECT_NE(encode_rate(r1), encode_rate(r2));
}

TEST(WireTest, MinimumFrame) {
  // A 4-byte flowlet-end message inside TCP/IP is still a minimum frame.
  EXPECT_EQ(wire_bytes_tcp(4), kMinFrame + kEthPreambleIfg);  // 84
  // A 0-byte pure ACK too.
  EXPECT_EQ(wire_bytes_tcp(0), 84);
}

TEST(WireTest, FullSegment) {
  EXPECT_EQ(wire_bytes_tcp(kMss), kMss + 40 + 18 + 20);
}


TEST(FlatMapTest, InsertFindErase) {
  FlatMap64<std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.emplace(1, 10));
  EXPECT_TRUE(m.emplace(2, 20));
  EXPECT_FALSE(m.emplace(1, 99));  // duplicate rejected, value kept
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, ZeroKeyIsValid) {
  // Wire-level flow keys can be 0: no sentinel key exists.
  FlatMap64<int> m;
  EXPECT_FALSE(m.contains(0));
  EXPECT_TRUE(m.emplace(0, 7));
  ASSERT_NE(m.find(0), nullptr);
  EXPECT_EQ(*m.find(0), 7);
  EXPECT_TRUE(m.erase(0));
  EXPECT_FALSE(m.contains(0));
}

TEST(FlatMapTest, GrowthAndChurnKeepEveryEntryFindable) {
  FlatMap64<std::uint64_t> m(16);
  Rng rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next();
    if (m.emplace(k, k * 2)) keys.push_back(k);
    if (keys.size() > 64 && rng.uniform() < 0.4) {
      const auto pick = rng.below(keys.size());
      EXPECT_TRUE(m.erase(keys[pick]));
      keys[pick] = keys.back();
      keys.pop_back();
    }
  }
  EXPECT_EQ(m.size(), keys.size());
  for (const std::uint64_t k : keys) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k * 2);
  }
}

TEST(FlatMapTest, BackshiftDeletionSurvivesCollisionClusters) {
  // Dense sequential keys produce probe clusters; deleting from the
  // middle of a cluster must keep every remaining probe chain intact
  // (the backward-shift invariant).
  FlatMap64<int> m(16);
  for (std::uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(m.emplace(k, static_cast<int>(k)));
  }
  for (std::uint64_t k = 0; k < 200; k += 3) EXPECT_TRUE(m.erase(k));
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(m.find(k), nullptr) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), static_cast<int>(k));
    }
  }
  // Reinsert the deleted keys: the holes are reusable.
  for (std::uint64_t k = 0; k < 200; k += 3) {
    EXPECT_TRUE(m.emplace(k, static_cast<int>(k) + 1000));
  }
  EXPECT_EQ(m.size(), 200u);
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap64<int> m;
  m.reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(m.emplace(k * 7919, static_cast<int>(k)));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(m.find(k * 7919), nullptr);
  }
}

}  // namespace
}  // namespace ft
