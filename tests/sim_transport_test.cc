// Tests for the virtual-time transport stack: EventQueue determinism
// guarantees (FIFO ties, seed-replay stability), SimTransport stream
// semantics (latency, EOF, backpressure, faults), SimLoop timers, and
// the ControlPlaneHarness -- the real AllocatorService + EndpointAgents
// on virtual time, including the two-run bit-identical-trajectory
// regression and the virtual-clock ports of the recovery drills (lease
// expiry, reconnect backoff spread) that the wall-clock recovery tests
// can only assert with tolerance bands.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/messages.h"
#include "net/client.h"
#include "net/transport.h"
#include "sim/control_plane_harness.h"
#include "sim/sim_transport.h"

namespace ft::sim {
namespace {

// ---------------------------------------------------------------------
// EventQueue determinism
// ---------------------------------------------------------------------

struct OrderRecorder : EventHandler {
  std::vector<std::pair<std::uint64_t, Time>> fired;
  EventQueue* q = nullptr;
  void on_event(std::uint32_t, std::uint64_t arg) override {
    fired.emplace_back(arg, q->now());
  }
};

TEST(EventQueueDeterminismTest, FifoAtEqualTimestamps) {
  EventQueue q;
  OrderRecorder r;
  r.q = &q;
  for (std::uint64_t i = 0; i < 100; ++i) q.schedule(42, &r, 0, i);
  q.run_until(100);
  ASSERT_EQ(r.fired.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r.fired[i].first, i);   // insertion order preserved
    EXPECT_EQ(r.fired[i].second, 42);
  }
}

TEST(EventQueueDeterminismTest, SeedReplayStableOrdering) {
  // Two queues fed the same seeded schedule (with many duplicate
  // timestamps) must dispatch in the same order.
  const auto run = [] {
    EventQueue q;
    OrderRecorder r;
    r.q = &q;
    Rng rng(7);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      q.schedule(static_cast<Time>(rng.below(50)), &r, 0, i);
    }
    q.run_until(100);
    return r.fired;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// SimTransport stream semantics
// ---------------------------------------------------------------------

struct Pipe {
  EventQueue q;
  SimTransport tr{q};
  int listener = -1;
  int port = 0;
  int client = -1;
  int server = -1;

  // Establishes a connection (advances one latency for the SYN).
  void establish() {
    listener = tr.listen_tcp(0, false, &port);
    ASSERT_GT(listener, 0);
    client = tr.connect_tcp("sim", port);
    ASSERT_GT(client, 0);
    EXPECT_EQ(tr.accept(listener), -1);  // SYN still in flight
    EXPECT_EQ(errno, EAGAIN);
    q.run_until(q.now() + 5 * kMicrosecond);
    server = tr.accept(listener);
    ASSERT_GT(server, 0);
  }
};

TEST(SimTransportTest, DeliversAfterLatency) {
  Pipe p;
  p.establish();
  const Time t0 = p.q.now();
  ASSERT_EQ(p.tr.write(p.client, "hello", 5), 5);
  char buf[16];
  // Not yet: the bytes are one tx_time + one latency away.
  p.q.run_until(t0 + 5 * kMicrosecond);
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  p.q.run_until(t0 + 6 * kMicrosecond);
  ASSERT_EQ(p.tr.read(p.server, buf, sizeof buf), 5);
  EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
  // The virtual clock tracked the queue the whole way.
  EXPECT_EQ(p.tr.virtual_clock().now_us() * kMicrosecond, p.q.now());
}

TEST(SimTransportTest, EofArrivesBehindData) {
  Pipe p;
  p.establish();
  ASSERT_EQ(p.tr.write(p.client, "bye", 3), 3);
  p.tr.close(p.client);
  p.q.run_until(p.q.now() + 20 * kMicrosecond);
  char buf[8];
  ASSERT_EQ(p.tr.read(p.server, buf, sizeof buf), 3);  // data first
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), 0);  // then clean EOF
}

TEST(SimTransportTest, KillAllResetsEstablishedStreams) {
  Pipe p;
  p.establish();
  p.tr.kill_all();
  char buf[8];
  EXPECT_EQ(p.tr.read(p.client, buf, sizeof buf), -1);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(p.tr.write(p.server, "x", 1), -1);
  EXPECT_EQ(errno, EPIPE);
  EXPECT_EQ(p.tr.stats().conns_reset, 1u);
  // The listener survives: a re-dial works.
  const int c2 = p.tr.connect_tcp("sim", p.port);
  ASSERT_GT(c2, 0);
  p.q.run_until(p.q.now() + 5 * kMicrosecond);
  EXPECT_GT(p.tr.accept(p.listener), 0);
}

TEST(SimTransportTest, BlackHoleSwallowsBytes) {
  Pipe p;
  p.establish();
  p.tr.set_black_hole(true);
  ASSERT_EQ(p.tr.write(p.client, "gone", 4), 4);  // write "succeeds"
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  char buf[8];
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(p.tr.stats().bytes_blackholed, 4);
}

TEST(SimTransportTest, OneWayPartitionUpDropsOnlyClientToServer) {
  Pipe p;
  p.establish();
  p.tr.set_partition_up(true);
  // Client -> server evaporates (write still "succeeds")...
  ASSERT_EQ(p.tr.write(p.client, "gone", 4), 4);
  // ...while server -> client keeps flowing.
  ASSERT_EQ(p.tr.write(p.server, "ok", 2), 2);
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  char buf[8];
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(p.tr.read(p.client, buf, sizeof buf), 2);
  EXPECT_EQ(std::memcmp(buf, "ok", 2), 0);
  EXPECT_EQ(p.tr.stats().bytes_partitioned_up, 4);
  EXPECT_EQ(p.tr.stats().bytes_partitioned_down, 0);
  // Healed: the direction carries bytes again.
  p.tr.set_partition_up(false);
  ASSERT_EQ(p.tr.write(p.client, "back", 4), 4);
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), 4);
}

TEST(SimTransportTest, OneWayPartitionDownDropsOnlyServerToClient) {
  Pipe p;
  p.establish();
  p.tr.set_partition_down(true);
  ASSERT_EQ(p.tr.write(p.server, "gone", 4), 4);
  ASSERT_EQ(p.tr.write(p.client, "ok", 2), 2);
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  char buf[8];
  EXPECT_EQ(p.tr.read(p.client, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(p.tr.read(p.server, buf, sizeof buf), 2);
  EXPECT_EQ(p.tr.stats().bytes_partitioned_down, 4);
  EXPECT_EQ(p.tr.stats().bytes_partitioned_up, 0);
}

// The conservation identity: every accepted byte has exactly one fate.
// Exercises delivery, black hole, both partitions, sieve drops, bytes
// dying at a closed peer, and stranded in-flight bytes.
TEST(SimTransportTest, ByteConservationIdentityHoldsAcrossFaults) {
  Pipe p;
  p.establish();
  const auto balanced = [&p] {
    const SimTransportStats& st = p.tr.stats();
    return st.bytes_accepted ==
           st.bytes_delivered + st.bytes_blackholed +
               st.bytes_partitioned_up + st.bytes_partitioned_down +
               st.bytes_dropped_sieve + st.bytes_dropped_closed +
               p.tr.stranded_bytes();
  };
  char buf[64];
  ASSERT_EQ(p.tr.write(p.client, "hello", 5), 5);
  EXPECT_TRUE(balanced());  // 5 bytes in flight = stranded
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  ASSERT_EQ(p.tr.read(p.server, buf, sizeof buf), 5);
  EXPECT_TRUE(balanced());  // delivered

  p.tr.set_black_hole(true);
  ASSERT_EQ(p.tr.write(p.client, "bh", 2), 2);
  p.tr.set_black_hole(false);
  p.tr.set_partition_up(true);
  ASSERT_EQ(p.tr.write(p.client, "up", 2), 2);
  p.tr.set_partition_up(false);
  p.tr.set_partition_down(true);
  ASSERT_EQ(p.tr.write(p.server, "dn", 2), 2);
  p.tr.set_partition_down(false);
  EXPECT_TRUE(balanced());

  // Sieve drop: a whole frame dies, counted in bytes and records.
  p.tr.set_drop_down_frac(1.0);
  const std::vector<std::uint8_t> frame = {1, 0, 0, 0, 5};  // 1-byte
  // payload whose first byte is the kHeartbeat record tag
  ASSERT_EQ(p.tr.write(p.server, frame.data(), frame.size()),
            static_cast<std::int64_t>(frame.size()));
  p.tr.set_drop_down_frac(0.0);
  EXPECT_EQ(p.tr.stats().bytes_dropped_sieve, 5);
  EXPECT_TRUE(balanced());

  // Bytes racing a close die at the closed door -- accounted, not lost.
  ASSERT_EQ(p.tr.write(p.client, "late", 4), 4);
  p.tr.close(p.server);
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  EXPECT_GE(p.tr.stats().bytes_dropped_closed, 4);
  EXPECT_TRUE(balanced());
}

TEST(SimTransportTest, SieveAttributesDroppedRecordsByType) {
  Pipe p;
  p.establish();
  p.tr.set_drop_down_frac(1.0);
  // One frame holding a rate-update record (tag 3) and a heartbeat
  // record (tag 5), sized per net/frame.h.
  std::vector<std::uint8_t> payload;
  payload.push_back(3);
  payload.resize(payload.size() + core::kRateUpdateBytes, 0);
  payload.push_back(5);
  payload.resize(payload.size() + core::kHeartbeatBytes, 0);
  std::vector<std::uint8_t> frame = {
      static_cast<std::uint8_t>(payload.size()), 0, 0, 0};
  frame.insert(frame.end(), payload.begin(), payload.end());
  ASSERT_EQ(p.tr.write(p.server, frame.data(), frame.size()),
            static_cast<std::int64_t>(frame.size()));
  EXPECT_EQ(p.tr.stats().records_dropped_rate, 1u);
  EXPECT_EQ(p.tr.stats().records_dropped_heartbeat, 1u);
  EXPECT_EQ(p.tr.stats().records_dropped_start, 0u);
  EXPECT_EQ(p.tr.stats().records_dropped_other, 0u);
}

TEST(SimTransportTest, DropSieveDropsWholeFrames) {
  Pipe p;
  p.establish();
  p.tr.set_drop_down_frac(1.0);  // every frame dies
  // One length-prefixed frame, written from the accept (server) side --
  // the direction the sieve watches.
  std::vector<std::uint8_t> frame = {8, 0, 0, 0};  // payload_len = 8
  frame.resize(4 + 8, 0xab);
  ASSERT_EQ(p.tr.write(p.server, frame.data(), frame.size()),
            static_cast<std::int64_t>(frame.size()));
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  char buf[32];
  EXPECT_EQ(p.tr.read(p.client, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(p.tr.stats().frames_down, 1u);
  EXPECT_EQ(p.tr.stats().frames_dropped, 1u);
  // Healed link: frames flow again.
  p.tr.set_drop_down_frac(0.0);
  ASSERT_EQ(p.tr.write(p.server, frame.data(), frame.size()),
            static_cast<std::int64_t>(frame.size()));
  p.q.run_until(p.q.now() + 50 * kMicrosecond);
  EXPECT_EQ(p.tr.read(p.client, buf, sizeof buf),
            static_cast<std::int64_t>(frame.size()));
}

TEST(SimTransportTest, BackpressureAndWindowReopen) {
  Pipe p;
  p.establish();
  p.tr.set_stream_buf_bytes(8);
  ASSERT_EQ(p.tr.write(p.client, "12345678", 8), 8);
  EXPECT_EQ(p.tr.write(p.client, "x", 1), -1);  // window full
  EXPECT_EQ(errno, EAGAIN);
  p.q.run_until(p.q.now() + 20 * kMicrosecond);
  char buf[8];
  ASSERT_EQ(p.tr.read(p.server, buf, sizeof buf), 8);  // drain
  EXPECT_EQ(p.tr.write(p.client, "x", 1), 1);          // reopened
}

TEST(SimTransportTest, ConnectRefusedWithoutListener) {
  EventQueue q;
  SimTransport tr(q);
  EXPECT_EQ(tr.connect_tcp("sim", 9999), -1);
  EXPECT_EQ(errno, ECONNREFUSED);
}

TEST(SimLoopTest, TimersFireAtExactVirtualDeadlines) {
  EventQueue q;
  SimTransport tr(q);
  SimLoop loop(tr);
  std::vector<std::int64_t> ticks;
  loop.add_periodic(100, [&] { ticks.push_back(tr.clock().now_us()); });
  std::int64_t oneshot_at = -1;
  loop.add_timer(250, [&] { oneshot_at = tr.clock().now_us(); });
  loop.run_once(1000);
  ASSERT_EQ(ticks.size(), 10u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], static_cast<std::int64_t>(100 * (i + 1)));
  }
  EXPECT_EQ(oneshot_at, 250);  // exact, no tolerance band needed
}

// ---------------------------------------------------------------------
// ControlPlaneHarness: the real control plane on virtual time
// ---------------------------------------------------------------------

HarnessConfig small_cfg(std::uint64_t seed = 1) {
  HarnessConfig cfg;
  cfg.num_endpoints = 64;
  cfg.flows_per_endpoint = 2;
  cfg.servers_per_rack = 8;
  cfg.spines = 2;
  cfg.stable_rounds = 3;
  cfg.max_virtual_us = 5'000'000;
  cfg.seed = seed;
  return cfg;
}

TEST(ControlPlaneHarnessTest, ConvergesWithAllFlowsSeen) {
  ControlPlaneHarness h(small_cfg());
  const ConvergeStats st = h.run_to_convergence();
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(h.flows_seen(), h.total_flows());
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.updates_sent, 0u);
  EXPECT_GT(st.updates_received, 0u);
  EXPECT_GT(st.virtual_us, 0);
  EXPECT_EQ(h.service().num_connections(), 64u);
  EXPECT_EQ(h.allocator().num_active_flowlets(), h.total_flows());
}

TEST(ControlPlaneHarnessTest, SameSeedRunsAreBitIdentical) {
  ControlPlaneHarness a(small_cfg(17));
  ControlPlaneHarness b(small_cfg(17));
  const ConvergeStats sa = a.run_to_convergence();
  const ConvergeStats sb = b.run_to_convergence();
  ASSERT_TRUE(sa.converged);
  // Not just the hash: every observable of the run must line up.
  EXPECT_EQ(sa.trajectory_hash, sb.trajectory_hash);
  EXPECT_EQ(sa.rounds, sb.rounds);
  EXPECT_EQ(sa.virtual_us, sb.virtual_us);
  EXPECT_EQ(sa.updates_sent, sb.updates_sent);
  EXPECT_EQ(sa.updates_received, sb.updates_received);
  EXPECT_EQ(sa.events_processed, sb.events_processed);
}

TEST(ControlPlaneHarnessTest, DifferentSeedsDiverge) {
  ControlPlaneHarness a(small_cfg(1));
  ControlPlaneHarness b(small_cfg(2));
  const ConvergeStats sa = a.run_to_convergence();
  const ConvergeStats sb = b.run_to_convergence();
  ASSERT_TRUE(sa.converged);
  ASSERT_TRUE(sb.converged);
  EXPECT_NE(sa.trajectory_hash, sb.trajectory_hash);
}

// Virtual-clock port of the recovery backoff-spread drill: after a
// reset storm the jittered schedules must not line up, and with a
// fixed seed the whole storm replays identically.
TEST(ControlPlaneHarnessTest, ReconnectStormSpreadsBackoff) {
  ControlPlaneHarness h(small_cfg(5));
  ASSERT_TRUE(h.run_to_convergence().converged);
  h.kill_connections();
  h.run_for(500'000);  // enough virtual time to re-dial everyone
  std::set<std::int64_t> backoffs;
  int reconnected = 0;
  for (int i = 0; i < h.num_agents(); ++i) {
    backoffs.insert(h.agent(i).last_backoff_us());
    if (h.agent(i).connected()) ++reconnected;
  }
  EXPECT_EQ(reconnected, h.num_agents());
  // 64 agents drawing jitter from 64 independent seeds: the spread must
  // be wide (no thundering herd).
  EXPECT_GT(backoffs.size(), 32u);
  // And the plane re-converges after the storm.
  EXPECT_TRUE(h.run_to_convergence().converged);
}

// Service crash-restart on virtual time: agents reconnect and replay
// every live flowlet; the allocator rebuilds its full flow set.
TEST(ControlPlaneHarnessTest, ServiceRestartRebuildsFlowState) {
  ControlPlaneHarness h(small_cfg(9));
  ASSERT_TRUE(h.run_to_convergence().converged);
  h.restart_service();
  EXPECT_EQ(h.allocator().num_active_flowlets(), 0u);  // flows ended
  ASSERT_TRUE(h.run_to_convergence().converged);
  EXPECT_EQ(h.allocator().num_active_flowlets(), h.total_flows());
  EXPECT_EQ(h.service().num_connections(), 64u);
  std::uint64_t replayed = 0;
  for (int i = 0; i < h.num_agents(); ++i) {
    replayed += h.agent(i).stats().replayed_starts;
  }
  EXPECT_EQ(replayed, h.total_flows());
}

// Virtual-clock port of the recovery lease-expiry drill. On the wall
// clock this needs tolerance bands; here the heartbeat cadence and the
// silence window are exact virtual quantities.
TEST(ControlPlaneHarnessTest, LeaseExpiresOnVirtualClockUnderBlackHole) {
  HarnessConfig cfg = small_cfg(3);
  cfg.heartbeat_period_us = 10'000;
  cfg.rate_lease_us = 50'000;
  cfg.poll_period_us = 500;
  ControlPlaneHarness h(cfg);
  ASSERT_TRUE(h.run_to_convergence().converged);
  // Heartbeats arriving: leases fresh everywhere.
  h.run_for(30'000);
  for (int i = 0; i < h.num_agents(); ++i) {
    ASSERT_TRUE(h.agent(i).lease_fresh()) << "agent " << i;
  }
  h.set_black_hole(true);
  // The last heartbeat landed within the previous 10ms, so every lease
  // deadline sits in (t0+40ms, t0+50ms]: at t0+20ms all still fresh...
  h.run_for(20'000);
  for (int i = 0; i < h.num_agents(); ++i) {
    ASSERT_TRUE(h.agent(i).lease_fresh()) << "agent " << i;
  }
  // ...and by t0+60ms every lease has expired and the agents degraded.
  h.run_for(40'000);
  std::uint64_t expiries = 0;
  for (int i = 0; i < h.num_agents(); ++i) {
    EXPECT_FALSE(h.agent(i).lease_fresh()) << "agent " << i;
    EXPECT_EQ(h.agent(i).conn_state(), net::ConnState::kDegraded)
        << "agent " << i;
    expiries += h.agent(i).stats().lease_expiries;
  }
  EXPECT_EQ(expiries, static_cast<std::uint64_t>(h.num_agents()));
}

}  // namespace
}  // namespace ft::sim
