// Tests for the topology graph, Clos builder, ECMP routing, and the
// FlowBlock/LinkBlock partition + aggregation schedule of paper §5.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "topo/clos.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace ft::topo {
namespace {

TEST(TopologyTest, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeType::kHost, 0);
  const NodeId b = t.add_node(NodeType::kTor, 0);
  const LinkId l = t.add_link(a, b, 10e9, 1500 * kNanosecond);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.link(l).src, a);
  EXPECT_EQ(t.link(l).dst, b);
  EXPECT_EQ(t.find_link(a, b), l);
  EXPECT_FALSE(t.find_link(b, a).valid());
  EXPECT_EQ(t.out_links(a).size(), 1u);
  EXPECT_EQ(t.out_links(b).size(), 0u);
}

ClosConfig paper_config() {
  ClosConfig cfg;  // defaults are the paper's §6.2 topology
  return cfg;
}

TEST(ClosTest, PaperTopologyShape) {
  ClosTopology clos(paper_config());
  EXPECT_EQ(clos.num_hosts(), 144);
  // Nodes: 144 hosts + 9 ToRs + 4 spines.
  EXPECT_EQ(clos.graph().num_nodes(), 144u + 9u + 4u);
  // Links: 2 per host + 2 per (rack, spine) pair.
  EXPECT_EQ(clos.graph().num_links(), 2u * 144u + 2u * 9u * 4u);
}

TEST(ClosTest, FullBisection) {
  const ClosConfig cfg = paper_config();
  // 16 servers x 10G up = 160G; 4 spines x 40G = 160G.
  const double up = cfg.servers_per_rack * cfg.host_link_bps;
  const double fabric = cfg.spines * cfg.fabric_link_bps;
  EXPECT_DOUBLE_EQ(up, fabric);
}

TEST(ClosTest, IntraRackPathHasTwoHops) {
  ClosTopology clos(paper_config());
  const Path p = clos.host_path(clos.host(0, 0), clos.host(0, 5), 77);
  ASSERT_EQ(p.size(), 2u);
  const Topology& g = clos.graph();
  EXPECT_EQ(g.link(p[0]).src, clos.host(0, 0));
  EXPECT_EQ(g.link(p[0]).dst, clos.tor(0));
  EXPECT_EQ(g.link(p[1]).src, clos.tor(0));
  EXPECT_EQ(g.link(p[1]).dst, clos.host(0, 5));
}

TEST(ClosTest, InterRackPathHasFourHops) {
  ClosTopology clos(paper_config());
  const Path p = clos.host_path(clos.host(0, 0), clos.host(3, 2), 1);
  ASSERT_EQ(p.size(), 4u);
  const Topology& g = clos.graph();
  // Path is connected: dst of hop k == src of hop k+1.
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_EQ(g.link(p[i]).dst, g.link(p[i + 1]).src);
  }
  EXPECT_EQ(g.link(p[0]).src, clos.host(0, 0));
  EXPECT_EQ(g.link(p[3]).dst, clos.host(3, 2));
}

TEST(ClosTest, EcmpSpreadsOverSpines) {
  ClosTopology clos(paper_config());
  std::set<std::uint32_t> spine_links;
  for (std::uint64_t h = 0; h < 64; ++h) {
    const Path p = clos.host_path(clos.host(0, 0), clos.host(1, 0), h);
    spine_links.insert(p[1].value());
  }
  EXPECT_EQ(spine_links.size(), 4u);  // all four spines used
}

TEST(ClosTest, PathRtts) {
  // One-way: host delay applies at endpoints (modeled by the simulator);
  // link propagation sums along the path. 2-hop: 2*2us + 2*1.5us = 7us
  // one-way -> 14us RTT. 4-hop: 2*2us + 4*1.5us = 10us -> 20us RTT
  // (the paper quotes 22us; see EXPERIMENTS.md).
  ClosTopology clos(paper_config());
  const ClosConfig& cfg = clos.config();
  const Path p2 = clos.host_path(clos.host(0, 0), clos.host(0, 1), 0);
  Time d2 = 2 * cfg.host_delay;
  for (LinkId l : p2) d2 += clos.graph().link(l).delay;
  EXPECT_EQ(2 * d2, from_us(14));
  const Path p4 = clos.host_path(clos.host(0, 0), clos.host(1, 0), 0);
  Time d4 = 2 * cfg.host_delay;
  for (LinkId l : p4) d4 += clos.graph().link(l).delay;
  EXPECT_EQ(2 * d4, from_us(20));
}

TEST(ClosTest, AllocatorPaths) {
  ClosConfig cfg = paper_config();
  cfg.with_allocator = true;
  ClosTopology clos(cfg);
  const Path to = clos.to_allocator_path(clos.host(2, 3), 9);
  ASSERT_EQ(to.size(), 3u);
  EXPECT_EQ(clos.graph().link(to[2]).dst, clos.allocator_node());
  const Path from = clos.from_allocator_path(clos.host(2, 3), 9);
  ASSERT_EQ(from.size(), 3u);
  EXPECT_EQ(clos.graph().link(from[0]).src, clos.allocator_node());
  EXPECT_EQ(clos.graph().link(from[2]).dst, clos.host(2, 3));
  // Allocator links are 40G.
  EXPECT_DOUBLE_EQ(clos.graph().link(to[2]).capacity_bps, 40e9);
}

TEST(ClosTest, HostIndexRoundTrip) {
  ClosTopology clos(paper_config());
  for (std::int32_t i = 0; i < clos.num_hosts(); ++i) {
    EXPECT_EQ(clos.host_index(clos.host(i)), i);
  }
}

// ---------------------------------------------------------------------
// BlockPartition
// ---------------------------------------------------------------------

ClosTopology make_clos(std::int32_t racks, std::int32_t servers,
                       std::int32_t spines) {
  ClosConfig cfg;
  cfg.racks = racks;
  cfg.servers_per_rack = servers;
  cfg.spines = spines;
  return ClosTopology(cfg);
}

TEST(PartitionTest, EveryDataLinkClassifiedExactlyOnce) {
  ClosTopology clos = make_clos(8, 4, 4);
  const BlockPartition part = BlockPartition::make(clos, 4);
  std::size_t classified = 0;
  for (std::int32_t b = 0; b < part.num_blocks; ++b) {
    classified += part.up_links[b].size() + part.down_links[b].size();
  }
  EXPECT_EQ(classified, clos.graph().num_links());
  // Up and down LinkBlocks have identical sizes per block (symmetric
  // topology): hosts*2... per block: hosts_up + tor->spine.
  for (std::int32_t b = 0; b < part.num_blocks; ++b) {
    EXPECT_EQ(part.up_links[b].size(), part.down_links[b].size());
    EXPECT_FALSE(part.up_links[b].empty());
  }
}

TEST(PartitionTest, UpLinksGoUpDownLinksGoDown) {
  ClosTopology clos = make_clos(8, 4, 4);
  const BlockPartition part = BlockPartition::make(clos, 2);
  const Topology& g = clos.graph();
  for (std::int32_t b = 0; b < part.num_blocks; ++b) {
    for (LinkId l : part.up_links[b]) {
      const auto st = g.node(g.link(l).src).type;
      const auto dt = g.node(g.link(l).dst).type;
      EXPECT_TRUE((st == NodeType::kHost && dt == NodeType::kTor) ||
                  (st == NodeType::kTor && dt == NodeType::kSpine));
    }
    for (LinkId l : part.down_links[b]) {
      const auto st = g.node(g.link(l).src).type;
      const auto dt = g.node(g.link(l).dst).type;
      EXPECT_TRUE((st == NodeType::kSpine && dt == NodeType::kTor) ||
                  (st == NodeType::kTor && dt == NodeType::kHost));
    }
  }
}

TEST(PartitionTest, FlowRoutePropertyHolds) {
  // The Figure 2 property: a flow's up links are in its source block and
  // its down links in its destination block, for every src/dst pair.
  ClosTopology clos = make_clos(8, 2, 2);
  const BlockPartition part = BlockPartition::make(clos, 4);
  for (std::int32_t s = 0; s < clos.num_hosts(); s += 3) {
    for (std::int32_t d = 0; d < clos.num_hosts(); d += 5) {
      if (s == d) continue;
      const Path p = clos.host_path(clos.host(s), clos.host(d), 17);
      const std::int32_t sb = part.block_of_host(clos, clos.host(s));
      const std::int32_t db = part.block_of_host(clos, clos.host(d));
      for (LinkId l : p) {
        const LinkClass& c = part.link_class[l.value()];
        if (c.dir == LinkDir::kUp) {
          EXPECT_EQ(c.block, sb);
        } else {
          ASSERT_EQ(c.dir, LinkDir::kDown);
          EXPECT_EQ(c.block, db);
        }
      }
    }
  }
}

// Simulates the aggregation schedule symbolically: each worker's "copy"
// is the set of (worker) contributions folded in; after aggregation the
// owner must hold exactly the full row (up) or column (down).
TEST(PartitionTest, AggregationScheduleCollectsFullSums) {
  for (std::int32_t n : {1, 2, 4, 8}) {
    const AggregationSchedule sched = AggregationSchedule::make(n);
    EXPECT_EQ(sched.steps.size(),
              static_cast<std::size_t>(n == 1 ? 0
                                               : std::countr_zero(
                                                     static_cast<unsigned>(
                                                         n))));
    // up[w] = multiset of workers whose up contribution w has folded in.
    std::vector<std::set<std::int32_t>> up(n * n), down(n * n);
    for (std::int32_t w = 0; w < n * n; ++w) {
      up[w] = {w};
      down[w] = {w};
    }
    for (const auto& step : sched.steps) {
      // Transfers within a step must have disjoint destinations per kind.
      std::set<std::int32_t> dsts_up, dsts_down, srcs_up, srcs_down;
      for (const Transfer& t : step) {
        auto& dsts = t.upward ? dsts_up : dsts_down;
        auto& srcs = t.upward ? srcs_up : srcs_down;
        EXPECT_TRUE(dsts.insert(t.dst_worker).second);
        EXPECT_TRUE(srcs.insert(t.src_worker).second);
        // Row consistency for up, column consistency for down.
        if (t.upward) {
          EXPECT_EQ(t.src_worker / n, t.dst_worker / n);
          EXPECT_EQ(t.block, t.src_worker / n);
        } else {
          EXPECT_EQ(t.src_worker % n, t.dst_worker % n);
          EXPECT_EQ(t.block, t.src_worker % n);
        }
      }
      // No worker is both source and destination for the same kind.
      for (std::int32_t w : srcs_up) EXPECT_FALSE(dsts_up.contains(w));
      for (std::int32_t w : srcs_down) EXPECT_FALSE(dsts_down.contains(w));
      // Apply the step.
      for (const Transfer& t : step) {
        auto& dst = t.upward ? up[t.dst_worker] : down[t.dst_worker];
        auto& src = t.upward ? up[t.src_worker] : down[t.src_worker];
        for (std::int32_t w : src) {
          EXPECT_TRUE(dst.insert(w).second)
              << "duplicate contribution: worker " << w;
        }
      }
    }
    // Owners hold complete rows / columns.
    for (std::int32_t b = 0; b < n; ++b) {
      const auto& u = up[sched.up_owner(b)];
      EXPECT_EQ(u.size(), static_cast<std::size_t>(n));
      for (std::int32_t j = 0; j < n; ++j) {
        EXPECT_TRUE(u.contains(b * n + j));
      }
      const auto& d = down[sched.down_owner(b)];
      EXPECT_EQ(d.size(), static_cast<std::size_t>(n));
      for (std::int32_t i = 0; i < n; ++i) {
        EXPECT_TRUE(d.contains(i * n + b));
      }
    }
  }
}

// The distribution phase is the reverse schedule; verify that replaying
// it in reverse from the owners reaches every worker.
TEST(PartitionTest, ReverseScheduleReachesAllWorkers) {
  for (std::int32_t n : {2, 4, 8}) {
    const AggregationSchedule sched = AggregationSchedule::make(n);
    std::vector<bool> has_up(n * n, false), has_down(n * n, false);
    for (std::int32_t b = 0; b < n; ++b) {
      has_up[sched.up_owner(b)] = true;
      has_down[sched.down_owner(b)] = true;
    }
    for (auto it = sched.steps.rbegin(); it != sched.steps.rend(); ++it) {
      for (const Transfer& t : *it) {
        if (t.upward) {
          EXPECT_TRUE(has_up[t.dst_worker])
              << "distributing from a worker without fresh prices";
          has_up[t.src_worker] = true;
        } else {
          EXPECT_TRUE(has_down[t.dst_worker]);
          has_down[t.src_worker] = true;
        }
      }
    }
    for (std::int32_t w = 0; w < n * n; ++w) {
      EXPECT_TRUE(has_up[w]) << "worker " << w;
      EXPECT_TRUE(has_down[w]) << "worker " << w;
    }
  }
}

TEST(PartitionTest, StepCountScalesWithLog) {
  // n^2 processors need log2(n) steps (§5: "the number of steps
  // increases every quadrupling of processors, not doubling").
  EXPECT_EQ(AggregationSchedule::make(2).steps.size(), 1u);
  EXPECT_EQ(AggregationSchedule::make(4).steps.size(), 2u);
  EXPECT_EQ(AggregationSchedule::make(8).steps.size(), 3u);
}

TEST(PartitionTest, UniformTransferCounts) {
  // Each step moves the same amount of LinkBlock state per participating
  // worker pair: 4 transfers per 2x2 group position, i.e. 2*n transfers
  // per kind per step... verify total count = 4 * (n/2) * groups.
  for (std::int32_t n : {2, 4, 8}) {
    const AggregationSchedule sched = AggregationSchedule::make(n);
    std::int32_t size = 2;
    for (const auto& step : sched.steps) {
      const std::int32_t groups = (n / size) * (n / size);
      EXPECT_EQ(step.size(),
                static_cast<std::size_t>(groups * 4 * (size / 2)));
      size *= 2;
    }
  }
}

}  // namespace
}  // namespace ft::topo
