// Tests for flow-size distributions and the Poisson traffic generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/wire.h"
#include "workload/size_dist.h"
#include "workload/traffic_gen.h"

namespace ft::wl {
namespace {

TEST(SizeDistTest, MeanOrderingDrivesOverheadOrdering) {
  // §6.4: update-traffic overhead is Web > Cache > Hadoop because the
  // mean flowlet size is Web < Cache < Hadoop.
  const double web = workload_dist(Workload::kWeb).mean_bytes();
  const double cache = workload_dist(Workload::kCache).mean_bytes();
  const double hadoop = workload_dist(Workload::kHadoop).mean_bytes();
  EXPECT_LT(web, cache);
  EXPECT_LT(cache, hadoop);
  // All in plausible datacenter ranges.
  EXPECT_GT(web, 10e3);
  EXPECT_LT(hadoop, 100e6);
}

TEST(SizeDistTest, MostFlowsAreSmall) {
  // Workload shape sanity: the majority of Web flows fit in 10 packets
  // (cited in §1: "the majority of flows are under 10 packets").
  const auto& web = workload_dist(Workload::kWeb);
  EXPECT_LT(web.quantile(0.5), 10.0 * kMss);
}

TEST(SizeDistTest, QuantileMonotone) {
  for (auto w : {Workload::kWeb, Workload::kCache, Workload::kHadoop}) {
    const auto& d = workload_dist(w);
    double prev = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
      const double v = d.quantile(q);
      EXPECT_GE(v, prev);
      prev = v;
    }
    EXPECT_DOUBLE_EQ(d.quantile(1.0), d.points().back().bytes);
  }
}

TEST(SizeDistTest, SampleMeanMatchesAnalyticMean) {
  for (auto w : {Workload::kWeb, Workload::kCache, Workload::kHadoop}) {
    const auto& d = workload_dist(w);
    Rng rng(42);
    double sum = 0.0;
    const int kDraws = 400000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(d.sample(rng));
    }
    const double sample_mean = sum / kDraws;
    // Heavy tails need loose tolerance.
    EXPECT_NEAR(sample_mean, d.mean_bytes(), 0.05 * d.mean_bytes())
        << d.name();
  }
}

TEST(SizeDistTest, SamplesWithinSupport) {
  const auto& d = workload_dist(Workload::kCache);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(static_cast<double>(s), d.points().back().bytes + 1);
  }
}

TEST(SizeBucketTest, PaperBuckets) {
  EXPECT_EQ(size_bucket(1), SizeBucket::kOnePacket);
  EXPECT_EQ(size_bucket(kMss), SizeBucket::kOnePacket);
  EXPECT_EQ(size_bucket(kMss + 1), SizeBucket::k1To10);
  EXPECT_EQ(size_bucket(10 * kMss), SizeBucket::k1To10);
  EXPECT_EQ(size_bucket(100 * kMss), SizeBucket::k10To100);
  EXPECT_EQ(size_bucket(1000 * kMss), SizeBucket::k100To1000);
  EXPECT_EQ(size_bucket(1001 * kMss), SizeBucket::kLarge);
}

TEST(TrafficGenTest, ArrivalRateMatchesLoadDefinition) {
  TrafficConfig cfg;
  cfg.num_hosts = 144;
  cfg.host_link_bps = 10e9;
  cfg.load = 0.8;
  cfg.workload = Workload::kWeb;
  const double mean_bits = workload_dist(cfg.workload).mean_bytes() * 8;
  EXPECT_NEAR(arrival_rate_per_sec(cfg),
              0.8 * 10e9 * 144 / mean_bits, 1e-6);
}

TEST(TrafficGenTest, EventsSortedAndValid) {
  TrafficConfig cfg;
  cfg.num_hosts = 16;
  cfg.load = 0.5;
  cfg.seed = 7;
  TrafficGenerator gen(cfg);
  const auto events = gen.generate(from_ms(20));
  ASSERT_GT(events.size(), 10u);
  Time prev = -1;
  for (const auto& e : events) {
    EXPECT_GE(e.start, prev);
    prev = e.start;
    EXPECT_GE(e.src_host, 0);
    EXPECT_LT(e.src_host, 16);
    EXPECT_GE(e.dst_host, 0);
    EXPECT_LT(e.dst_host, 16);
    EXPECT_NE(e.src_host, e.dst_host);
    EXPECT_GE(e.bytes, 1);
  }
}

TEST(TrafficGenTest, EmpiricalLoadApproximatesTarget) {
  TrafficConfig cfg;
  cfg.num_hosts = 64;
  cfg.load = 0.6;
  cfg.workload = Workload::kWeb;
  cfg.seed = 3;
  TrafficGenerator gen(cfg);
  const Time horizon = from_ms(400);
  double bytes = 0;
  for (const auto& e : gen.generate(horizon)) {
    bytes += static_cast<double>(e.bytes);
  }
  const double offered_bps = bytes * 8 / to_sec(horizon);
  const double capacity = 64 * 10e9;
  EXPECT_NEAR(offered_bps / capacity, 0.6, 0.08);
}

TEST(TrafficGenTest, DeterministicAcrossRuns) {
  TrafficConfig cfg;
  cfg.num_hosts = 8;
  cfg.seed = 11;
  TrafficGenerator a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    const auto ea = a.next();
    const auto eb = b.next();
    EXPECT_EQ(ea.start, eb.start);
    EXPECT_EQ(ea.src_host, eb.src_host);
    EXPECT_EQ(ea.dst_host, eb.dst_host);
    EXPECT_EQ(ea.bytes, eb.bytes);
  }
}

TEST(PacketTraceTest, SortedWellFormedAndBytesConserved) {
  TrafficConfig cfg;
  cfg.num_hosts = 16;
  cfg.load = 0.4;
  cfg.seed = 9;
  PacketTraceGenerator gen(cfg);
  const PacketTrace trace = gen.generate(from_ms(10));
  ASSERT_GT(trace.packets.size(), 1000u);
  ASSERT_GT(trace.flows, 0u);
  ASSERT_GE(trace.bursts, trace.flows);

  // Time-sorted across flows.
  Time prev = -1;
  for (const auto& p : trace.packets) {
    EXPECT_GE(p.at, prev);
    prev = p.at;
  }

  // Per-flow: boundary flags pair up (every burst has exactly one start
  // and one end), burst indexes increase, and packet bytes sum to the
  // flow size the underlying generator produced.
  TrafficGenerator flows(cfg);
  const auto flow_events = flows.generate(from_ms(10));
  ASSERT_EQ(flow_events.size(), trace.flows);
  std::vector<std::int64_t> bytes(trace.flows, 0);
  std::vector<std::uint32_t> starts(trace.flows, 0);
  std::vector<std::uint32_t> ends(trace.flows, 0);
  std::vector<bool> open(trace.flows, false);
  std::size_t bursts = 0;
  for (const auto& p : trace.packets) {
    ASSERT_LT(p.flow_id, trace.flows);
    EXPECT_GE(p.bytes, 1);
    EXPECT_LE(p.bytes, gen.burst_config().mtu_bytes);
    EXPECT_EQ(p.src_host, flow_events[p.flow_id].src_host);
    EXPECT_EQ(p.dst_host, flow_events[p.flow_id].dst_host);
    bytes[p.flow_id] += p.bytes;
    if (p.burst_start) {
      EXPECT_FALSE(open[p.flow_id]) << "unclosed previous burst";
      open[p.flow_id] = true;
      ++starts[p.flow_id];
      ++bursts;
    }
    if (p.burst_end) {
      EXPECT_TRUE(open[p.flow_id]) << "end without start";
      open[p.flow_id] = false;
      ++ends[p.flow_id];
    }
  }
  EXPECT_EQ(bursts, trace.bursts);
  for (std::size_t f = 0; f < trace.flows; ++f) {
    EXPECT_EQ(bytes[f], flow_events[f].bytes) << "flow " << f;
    EXPECT_EQ(starts[f], ends[f]) << "flow " << f;
    EXPECT_FALSE(open[f]) << "flow " << f;
  }
}

TEST(PacketTraceTest, ThinkGapsRespectFloorAndSpacingStaysTight) {
  TrafficConfig cfg;
  cfg.num_hosts = 8;
  cfg.load = 0.3;
  cfg.seed = 4;
  BurstConfig burst;
  burst.min_think_gap = 100 * kMicrosecond;
  burst.mean_think_gap = 200 * kMicrosecond;
  PacketTraceGenerator gen(cfg, burst);
  const PacketTrace trace = gen.generate(from_ms(10));
  ASSERT_GT(trace.bursts, trace.flows);  // some multi-burst flows

  // Reconstruct per-flow packet sequences and check the gap structure:
  // intra-burst spacing bounded by pacing x (1 + jitter), think gaps
  // at least the configured floor.
  const Time spacing = tx_time(burst.mtu_bytes, burst.pacing_bps);
  const Time max_spacing = static_cast<Time>(
      static_cast<double>(spacing) * (1.0 + burst.jitter_max) + 1);
  std::vector<Time> last_at(trace.flows, -1);
  std::vector<bool> have_last(trace.flows, false);
  for (const auto& p : trace.packets) {
    if (have_last[p.flow_id]) {
      const Time gap = p.at - last_at[p.flow_id];
      if (p.burst_start) {
        EXPECT_GE(gap, burst.min_think_gap) << "think gap below floor";
      } else {
        EXPECT_LE(gap, max_spacing) << "intra-burst spacing too wide";
        EXPECT_GE(gap, spacing);
      }
    }
    last_at[p.flow_id] = p.at;
    have_last[p.flow_id] = true;
  }
}

TEST(PacketTraceTest, DeterministicAcrossRuns) {
  TrafficConfig cfg;
  cfg.num_hosts = 8;
  cfg.seed = 21;
  PacketTraceGenerator a(cfg), b(cfg);
  const PacketTrace ta = a.generate(from_ms(5));
  const PacketTrace tb = b.generate(from_ms(5));
  ASSERT_EQ(ta.packets.size(), tb.packets.size());
  ASSERT_EQ(ta.bursts, tb.bursts);
  for (std::size_t i = 0; i < ta.packets.size(); ++i) {
    EXPECT_EQ(ta.packets[i].at, tb.packets[i].at);
    EXPECT_EQ(ta.packets[i].flow_id, tb.packets[i].flow_id);
    EXPECT_EQ(ta.packets[i].bytes, tb.packets[i].bytes);
    EXPECT_EQ(ta.packets[i].burst_start, tb.packets[i].burst_start);
    EXPECT_EQ(ta.packets[i].burst_end, tb.packets[i].burst_end);
  }
}

TEST(TrafficGenTest, UniformSourceSelection) {
  TrafficConfig cfg;
  cfg.num_hosts = 8;
  cfg.seed = 23;
  TrafficGenerator gen(cfg);
  std::vector<int> counts(8, 0);
  const int kEvents = 80000;
  for (int i = 0; i < kEvents; ++i) ++counts[gen.next().src_host];
  for (int c : counts) EXPECT_NEAR(c, kEvents / 8, kEvents / 8 * 0.1);
}

}  // namespace
}  // namespace ft::wl
