// Property-based tests (parameterized sweeps) on core invariants:
// optimality across utility families, scale invariance, normalization
// feasibility, codec error bounds, and event-ordering determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ratecode.h"
#include "common/rng.h"
#include "core/exact.h"
#include "core/messages.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/problem.h"
#include "net/frame.h"
#include "sim/event_queue.h"

namespace ft::core {
namespace {

struct RandomCase {
  std::uint64_t seed;
  double alpha;  // utility family
};

NumProblem random_problem(std::uint64_t seed, double alpha,
                          std::size_t links = 10,
                          std::size_t flows = 30) {
  Rng rng(seed);
  std::vector<double> caps;
  for (std::size_t l = 0; l < links; ++l) {
    caps.push_back(rng.uniform(5e9, 40e9));
  }
  NumProblem p(std::move(caps));
  // Weight scale keeping optimal prices O(1) for the family: w ~ x^alpha
  // at x ~ 1e9..1e10.
  const double wscale = std::pow(5e9, alpha - 1.0) * 1e9;
  for (std::size_t f = 0; f < flows; ++f) {
    const std::size_t hops = 1 + rng.below(3);
    std::vector<LinkId> route;
    const std::size_t start = rng.below(links);
    for (std::size_t h = 0; h < hops; ++h) {
      const auto l = static_cast<std::uint32_t>((start + 3 * h) % links);
      bool dup = false;
      for (LinkId existing : route) dup = dup || existing.value() == l;
      if (!dup) route.emplace_back(l);
    }
    p.add_flow(route,
               Utility::alpha_fair(alpha, rng.uniform(0.5, 2.0) * wscale));
  }
  return p;
}

class UtilityFamilyP : public ::testing::TestWithParam<RandomCase> {};

TEST_P(UtilityFamilyP, ExactSolutionSatisfiesKkt) {
  NumProblem p =
      random_problem(GetParam().seed, GetParam().alpha);
  const ExactResult res = solve_exact(p);
  EXPECT_TRUE(res.converged)
      << "seed " << GetParam().seed << " alpha " << GetParam().alpha;
  EXPECT_LT(res.kkt_residual, 2e-3);
  // Feasibility explicitly.
  std::vector<double> alloc(p.num_links(), 0.0);
  for (FlowIndex s = 0; s < p.num_slots(); ++s) {
    if (!p.flow(s).active()) continue;
    EXPECT_GT(res.rates[s], 0.0);
    for (std::uint32_t l : p.flow(s).route()) alloc[l] += res.rates[s];
  }
  for (std::size_t l = 0; l < p.num_links(); ++l) {
    EXPECT_LE(alloc[l], p.capacity(l) * (1 + 1e-4));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, UtilityFamilyP,
    ::testing::Values(RandomCase{1, 1.0}, RandomCase{2, 1.0},
                      RandomCase{3, 1.0}, RandomCase{4, 2.0},
                      RandomCase{5, 2.0}, RandomCase{6, 0.5},
                      RandomCase{7, 0.5}, RandomCase{8, 1.5},
                      RandomCase{9, 3.0}, RandomCase{10, 1.0}));

TEST(ScaleInvarianceTest, RatesScaleWithCapacityAndWeight) {
  // Scaling capacities and (log-utility) weights by k scales the optimal
  // rates by k and leaves prices unchanged -- the conditioning argument
  // behind the default 1 Gbit/s weight.
  const double k = 7.5;
  NumProblem a({10e9, 20e9});
  NumProblem b({k * 10e9, k * 20e9});
  const std::vector<LinkId> r01{LinkId(0), LinkId(1)};
  const std::vector<LinkId> r0{LinkId(0)};
  a.add_flow(r01, Utility::log_utility(1e9));
  a.add_flow(r0, Utility::log_utility(2e9));
  b.add_flow(r01, Utility::log_utility(k * 1e9));
  b.add_flow(r0, Utility::log_utility(k * 2e9));
  const ExactResult ra = solve_exact(a);
  const ExactResult rb = solve_exact(b);
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_NEAR(rb.rates[s], k * ra.rates[s], k * ra.rates[s] * 1e-4);
  }
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_NEAR(rb.prices[l], ra.prices[l],
                std::max(1e-6, ra.prices[l]) * 1e-3);
  }
}

TEST(ScaleInvarianceTest, NedIterationDeterministic) {
  NumProblem p1 = random_problem(42, 1.0);
  NumProblem p2 = random_problem(42, 1.0);
  NedSolver a(p1), b(p2);
  for (int i = 0; i < 100; ++i) {
    a.iterate();
    b.iterate();
  }
  for (std::size_t s = 0; s < p1.num_slots(); ++s) {
    EXPECT_DOUBLE_EQ(a.rates()[s], b.rates()[s]);
  }
}

class FNormFamilyP : public ::testing::TestWithParam<RandomCase> {};

TEST_P(FNormFamilyP, FeasibleForAllUtilityFamilies) {
  NumProblem p =
      random_problem(GetParam().seed + 100, GetParam().alpha);
  NedSolver ned(p);
  // Sample feasibility mid-convergence (the hard case) and at
  // convergence.
  std::vector<double> out(p.num_slots());
  for (int it = 1; it <= 64; ++it) {
    ned.iterate();
    if ((it & (it - 1)) != 0) continue;  // powers of two
    f_norm(p, ned.rates(), out);
    std::vector<double> alloc(p.num_links(), 0.0);
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      if (!p.flow(s).active()) continue;
      for (std::uint32_t l : p.flow(s).route()) alloc[l] += out[s];
    }
    for (std::size_t l = 0; l < p.num_links(); ++l) {
      ASSERT_LE(alloc[l], p.capacity(l) * (1 + 1e-9))
          << "iteration " << it;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FNormFamilyP,
    ::testing::Values(RandomCase{1, 1.0}, RandomCase{2, 2.0},
                      RandomCase{3, 0.5}, RandomCase{4, 1.0},
                      RandomCase{5, 1.5}, RandomCase{6, 1.0},
                      RandomCase{7, 2.0}, RandomCase{8, 1.0}));

class RateCodeP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateCodeP, QuantizationErrorBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform across the normalized range (>= 2048 granularity
    // units); below that the format is denormal with absolute error
    // bounded by one granule, checked separately.
    const double rate = std::exp(rng.uniform(std::log(3e6), std::log(1e12)));
    const double decoded = ft::decode_rate(ft::encode_rate(rate));
    EXPECT_NEAR(decoded, rate, rate * ft::kRateCodeMaxRelError * 2.01)
        << rate;
  }
  for (int i = 0; i < 1000; ++i) {
    const double rate = rng.uniform(1e3, 2e6);
    const double decoded = ft::decode_rate(ft::encode_rate(rate));
    EXPECT_NEAR(decoded, rate, 1e3) << rate;  // one 1 Kbit/s granule
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateCodeP, ::testing::Values(1, 2, 3, 4));

TEST(MessageFuzzTest, RoundTripRandomValues) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    FlowletStartMsg s;
    s.flow_key = static_cast<std::uint32_t>(rng.next());
    s.src_host = static_cast<std::uint16_t>(rng.next());
    s.dst_host = static_cast<std::uint16_t>(rng.next());
    s.size_hint_bytes = static_cast<std::uint32_t>(rng.next());
    s.weight_milli = static_cast<std::uint16_t>(rng.next());
    s.flags = static_cast<std::uint16_t>(rng.next());
    EXPECT_EQ(decode_flowlet_start(encode(s)), s);
    FlowletEndMsg e{static_cast<std::uint32_t>(rng.next())};
    EXPECT_EQ(decode_flowlet_end(encode(e)), e);
    RateUpdateMsg u{static_cast<std::uint32_t>(rng.next()),
                    static_cast<std::uint16_t>(rng.next()),
                    static_cast<std::uint16_t>(rng.next())};
    EXPECT_EQ(decode_rate_update(encode(u)), u);
    HeartbeatMsg h;
    h.t_send_ns = static_cast<std::int64_t>(rng.next());
    h.lease_us = static_cast<std::uint32_t>(rng.next());
    h.epoch = static_cast<std::uint16_t>(rng.next());
    EXPECT_EQ(decode_heartbeat(encode(h)), h);
  }
}

// The epoch stamp survives the full range, including the wrap frontier
// the serial comparison has to get right.
TEST(MessageFuzzTest, EpochStampRoundTripsAtWrapBoundaries) {
  for (std::uint32_t e : {0u, 1u, 32767u, 32768u, 65534u, 65535u}) {
    RateUpdateMsg u{42, 1234, static_cast<std::uint16_t>(e)};
    EXPECT_EQ(decode_rate_update(encode(u)).epoch, e);
    HeartbeatMsg h;
    h.epoch = static_cast<std::uint16_t>(e);
    EXPECT_EQ(decode_heartbeat(encode(h)).epoch, e);
  }
}

}  // namespace
}  // namespace ft::core

namespace ft::net {
namespace {

// Fuzz the epoch-stamped wire encodings end to end through the frame
// layer: a mangled byte stream must never crash the parser, must stay
// sticky-corrupt once rejected, and -- the property the epoch hardening
// leans on -- must never deliver a record carrying an epoch the sender
// never stamped, as a fabricated newer epoch would make every agent
// discard legitimate rate updates as stale.
struct EpochSink : MessageSink {
  std::vector<std::uint16_t> update_epochs;
  std::vector<std::uint16_t> heartbeat_epochs;
  std::size_t others = 0;
  void on_rate_update(const core::RateUpdateMsg& m) override {
    update_epochs.push_back(m.epoch);
  }
  void on_heartbeat(const core::HeartbeatMsg& m) override {
    heartbeat_epochs.push_back(m.epoch);
  }
  void on_flowlet_start(const core::FlowletStartMsg&) override { ++others; }
  void on_flowlet_end(const core::FlowletEndMsg&) override { ++others; }
  void on_trace_mark(const core::TraceMarkMsg&) override { ++others; }
};

constexpr std::uint16_t kEpoch = 0x7A31;
constexpr std::size_t kUpdates = 8;

// One frame of kUpdates rate updates (distinct keys, so nothing
// coalesces) followed by a lease heartbeat, all stamped kEpoch.
std::vector<std::uint8_t> epoch_frame() {
  FrameWriter w;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    core::RateUpdateMsg u;
    u.flow_key = static_cast<std::uint32_t>(1 + i);
    u.rate_code = static_cast<std::uint16_t>(100 + i);
    u.epoch = kEpoch;
    w.add(u);
  }
  core::HeartbeatMsg h;
  h.t_send_ns = 123456789;
  h.lease_us = 50'000;
  h.epoch = kEpoch;
  w.add(h);
  std::vector<std::uint8_t> out;
  w.flush(out);
  return out;
}

// Byte positions (within the framed bytes) that hold an epoch field:
// rate record = tag + 8B payload with the epoch at payload offset 6;
// heartbeat record = tag + 14B payload with the epoch at offset 12.
std::vector<bool> epoch_byte_map(std::size_t frame_len) {
  std::vector<bool> is_epoch(frame_len, false);
  std::size_t off = kFrameHeaderBytes;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    is_epoch[off + 1 + 6] = is_epoch[off + 1 + 7] = true;
    off += kRateRecordBytes;
  }
  is_epoch[off + 1 + 12] = is_epoch[off + 1 + 13] = true;
  return is_epoch;
}

// Record tag byte positions: flipping one re-types (or invalidates) the
// record, so downstream bytes re-cut arbitrarily.
bool is_tag_byte(std::size_t byte) {
  const std::size_t hb_tag =
      kFrameHeaderBytes + kUpdates * kRateRecordBytes;
  if (byte == hb_tag) return true;
  if (byte < kFrameHeaderBytes || byte >= hb_tag) return false;
  return (byte - kFrameHeaderBytes) % kRateRecordBytes == 0;
}

TEST(EpochFrameFuzzTest, ArbitrarySplitsDeliverExactEpochs) {
  const std::vector<std::uint8_t> frame = epoch_frame();
  Rng rng(41);
  for (int round = 0; round < 200; ++round) {
    FrameParser p;
    EpochSink sink;
    std::size_t off = 0;
    bool ok = true;
    while (off < frame.size()) {
      const std::size_t n =
          std::min(frame.size() - off, 1 + rng.below(7));
      ok = p.feed(std::span(frame).subspan(off, n), sink);
      ASSERT_TRUE(ok);
      off += n;
    }
    ASSERT_EQ(sink.update_epochs.size(), kUpdates);
    ASSERT_EQ(sink.heartbeat_epochs.size(), 1u);
    for (std::uint16_t e : sink.update_epochs) EXPECT_EQ(e, kEpoch);
    EXPECT_EQ(sink.heartbeat_epochs[0], kEpoch);
  }
}

TEST(EpochFrameFuzzTest, TruncationNeverYieldsPartialEpoch) {
  const std::vector<std::uint8_t> frame = epoch_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameParser p;
    EpochSink sink;
    // A truncated stream is just an incomplete frame: nothing may be
    // delivered (records only decode from a *complete* frame), so no
    // half-written epoch can ever reach the agent.
    EXPECT_TRUE(p.feed(std::span(frame).subspan(0, cut), sink));
    EXPECT_TRUE(sink.update_epochs.empty());
    EXPECT_TRUE(sink.heartbeat_epochs.empty());
    EXPECT_EQ(sink.others, 0u);
  }
}

TEST(EpochFrameFuzzTest, BitFlipsNeverCrashAndNeverForgeEpochs) {
  const std::vector<std::uint8_t> frame = epoch_frame();
  const std::vector<bool> is_epoch = epoch_byte_map(frame.size());
  const std::vector<std::uint8_t> valid = frame;  // probe for stickiness
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mangled = frame;
      mangled[byte] =
          static_cast<std::uint8_t>(mangled[byte] ^ (1u << bit));
      FrameParser p;
      EpochSink sink;
      const bool ok = p.feed(std::span(mangled), sink);
      if (!ok) {
        // Sticky: once the stream is condemned, even pristine bytes
        // are refused (the connection must be dropped, not resumed).
        EpochSink again;
        EXPECT_FALSE(p.feed(std::span(valid), again));
        EXPECT_TRUE(again.update_epochs.empty());
        continue;
      }
      // Parsed: a flip outside the header (which may re-cut record
      // boundaries) and outside the record tags and epoch bytes leaves
      // the epochs untouched -- corruption of keys, codes or
      // timestamps must not fabricate an epoch.
      const bool structural =
          byte < kFrameHeaderBytes || is_tag_byte(byte);
      if (structural || is_epoch[byte]) continue;
      for (std::uint16_t e : sink.update_epochs) EXPECT_EQ(e, kEpoch);
      for (std::uint16_t e : sink.heartbeat_epochs) EXPECT_EQ(e, kEpoch);
    }
  }
}

TEST(EpochFrameFuzzTest, SplicedStreamsStayStickyCorrupt) {
  const std::vector<std::uint8_t> frame = epoch_frame();
  Rng rng(43);
  int condemned = 0;
  for (int round = 0; round < 200; ++round) {
    // Splice: an honest prefix cut mid-frame, resumed from an
    // unrelated offset of another frame -- the classic symptom of a
    // proxy or buffer bug gluing two connections together.
    const std::size_t cut = 1 + rng.below(frame.size() - 1);
    const std::size_t resume = 1 + rng.below(frame.size() - 1);
    std::vector<std::uint8_t> spliced(frame.begin(),
                                      frame.begin() + cut);
    spliced.insert(spliced.end(), frame.begin() + resume, frame.end());
    spliced.insert(spliced.end(), frame.begin(), frame.end());
    FrameParser p;
    EpochSink sink;
    // A splice can realign into structurally valid records whose epoch
    // bytes come from unrelated fields -- undetectable at this layer by
    // construction, which is exactly why SimProxy forwards only
    // complete frames across upstream swaps. What the parser owes us:
    // never crash, and stay sticky-corrupt once the gluing trips the
    // length or tag checks.
    const bool ok = p.feed(std::span(spliced), sink);
    if (!ok) {
      ++condemned;
      EpochSink again;
      EXPECT_FALSE(p.feed(std::span(frame), again));
      EXPECT_TRUE(again.update_epochs.empty());
    }
  }
  // The splice detector must actually fire on most gluings; if every
  // one parsed, the framing is not doing its job.
  EXPECT_GT(condemned, 100);
}

}  // namespace
}  // namespace ft::net

namespace ft::sim {
namespace {

struct OrderChecker : EventHandler {
  Time last = -1;
  EventQueue* q = nullptr;
  std::size_t fired = 0;
  void on_event(std::uint32_t, std::uint64_t) override {
    EXPECT_GE(q->now(), last);
    last = q->now();
    ++fired;
  }
};

class EventOrderP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderP, RandomScheduleProcessesInTimeOrder) {
  EventQueue q;
  OrderChecker checker;
  checker.q = &q;
  Rng rng(GetParam());
  std::size_t scheduled = 0;
  for (int i = 0; i < 5000; ++i) {
    q.schedule(static_cast<Time>(rng.below(1'000'000)), &checker, 0);
    ++scheduled;
  }
  q.run_until(2'000'000);
  EXPECT_EQ(checker.fired, scheduled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderP,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace ft::sim
