// Property-based tests (parameterized sweeps) on core invariants:
// optimality across utility families, scale invariance, normalization
// feasibility, codec error bounds, and event-ordering determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/ratecode.h"
#include "common/rng.h"
#include "core/exact.h"
#include "core/messages.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/problem.h"
#include "sim/event_queue.h"

namespace ft::core {
namespace {

struct RandomCase {
  std::uint64_t seed;
  double alpha;  // utility family
};

NumProblem random_problem(std::uint64_t seed, double alpha,
                          std::size_t links = 10,
                          std::size_t flows = 30) {
  Rng rng(seed);
  std::vector<double> caps;
  for (std::size_t l = 0; l < links; ++l) {
    caps.push_back(rng.uniform(5e9, 40e9));
  }
  NumProblem p(std::move(caps));
  // Weight scale keeping optimal prices O(1) for the family: w ~ x^alpha
  // at x ~ 1e9..1e10.
  const double wscale = std::pow(5e9, alpha - 1.0) * 1e9;
  for (std::size_t f = 0; f < flows; ++f) {
    const std::size_t hops = 1 + rng.below(3);
    std::vector<LinkId> route;
    const std::size_t start = rng.below(links);
    for (std::size_t h = 0; h < hops; ++h) {
      const auto l = static_cast<std::uint32_t>((start + 3 * h) % links);
      bool dup = false;
      for (LinkId existing : route) dup = dup || existing.value() == l;
      if (!dup) route.emplace_back(l);
    }
    p.add_flow(route,
               Utility::alpha_fair(alpha, rng.uniform(0.5, 2.0) * wscale));
  }
  return p;
}

class UtilityFamilyP : public ::testing::TestWithParam<RandomCase> {};

TEST_P(UtilityFamilyP, ExactSolutionSatisfiesKkt) {
  NumProblem p =
      random_problem(GetParam().seed, GetParam().alpha);
  const ExactResult res = solve_exact(p);
  EXPECT_TRUE(res.converged)
      << "seed " << GetParam().seed << " alpha " << GetParam().alpha;
  EXPECT_LT(res.kkt_residual, 2e-3);
  // Feasibility explicitly.
  std::vector<double> alloc(p.num_links(), 0.0);
  for (FlowIndex s = 0; s < p.num_slots(); ++s) {
    if (!p.flow(s).active()) continue;
    EXPECT_GT(res.rates[s], 0.0);
    for (std::uint32_t l : p.flow(s).route()) alloc[l] += res.rates[s];
  }
  for (std::size_t l = 0; l < p.num_links(); ++l) {
    EXPECT_LE(alloc[l], p.capacity(l) * (1 + 1e-4));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, UtilityFamilyP,
    ::testing::Values(RandomCase{1, 1.0}, RandomCase{2, 1.0},
                      RandomCase{3, 1.0}, RandomCase{4, 2.0},
                      RandomCase{5, 2.0}, RandomCase{6, 0.5},
                      RandomCase{7, 0.5}, RandomCase{8, 1.5},
                      RandomCase{9, 3.0}, RandomCase{10, 1.0}));

TEST(ScaleInvarianceTest, RatesScaleWithCapacityAndWeight) {
  // Scaling capacities and (log-utility) weights by k scales the optimal
  // rates by k and leaves prices unchanged -- the conditioning argument
  // behind the default 1 Gbit/s weight.
  const double k = 7.5;
  NumProblem a({10e9, 20e9});
  NumProblem b({k * 10e9, k * 20e9});
  const std::vector<LinkId> r01{LinkId(0), LinkId(1)};
  const std::vector<LinkId> r0{LinkId(0)};
  a.add_flow(r01, Utility::log_utility(1e9));
  a.add_flow(r0, Utility::log_utility(2e9));
  b.add_flow(r01, Utility::log_utility(k * 1e9));
  b.add_flow(r0, Utility::log_utility(k * 2e9));
  const ExactResult ra = solve_exact(a);
  const ExactResult rb = solve_exact(b);
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_NEAR(rb.rates[s], k * ra.rates[s], k * ra.rates[s] * 1e-4);
  }
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_NEAR(rb.prices[l], ra.prices[l],
                std::max(1e-6, ra.prices[l]) * 1e-3);
  }
}

TEST(ScaleInvarianceTest, NedIterationDeterministic) {
  NumProblem p1 = random_problem(42, 1.0);
  NumProblem p2 = random_problem(42, 1.0);
  NedSolver a(p1), b(p2);
  for (int i = 0; i < 100; ++i) {
    a.iterate();
    b.iterate();
  }
  for (std::size_t s = 0; s < p1.num_slots(); ++s) {
    EXPECT_DOUBLE_EQ(a.rates()[s], b.rates()[s]);
  }
}

class FNormFamilyP : public ::testing::TestWithParam<RandomCase> {};

TEST_P(FNormFamilyP, FeasibleForAllUtilityFamilies) {
  NumProblem p =
      random_problem(GetParam().seed + 100, GetParam().alpha);
  NedSolver ned(p);
  // Sample feasibility mid-convergence (the hard case) and at
  // convergence.
  std::vector<double> out(p.num_slots());
  for (int it = 1; it <= 64; ++it) {
    ned.iterate();
    if ((it & (it - 1)) != 0) continue;  // powers of two
    f_norm(p, ned.rates(), out);
    std::vector<double> alloc(p.num_links(), 0.0);
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      if (!p.flow(s).active()) continue;
      for (std::uint32_t l : p.flow(s).route()) alloc[l] += out[s];
    }
    for (std::size_t l = 0; l < p.num_links(); ++l) {
      ASSERT_LE(alloc[l], p.capacity(l) * (1 + 1e-9))
          << "iteration " << it;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FNormFamilyP,
    ::testing::Values(RandomCase{1, 1.0}, RandomCase{2, 2.0},
                      RandomCase{3, 0.5}, RandomCase{4, 1.0},
                      RandomCase{5, 1.5}, RandomCase{6, 1.0},
                      RandomCase{7, 2.0}, RandomCase{8, 1.0}));

class RateCodeP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateCodeP, QuantizationErrorBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform across the normalized range (>= 2048 granularity
    // units); below that the format is denormal with absolute error
    // bounded by one granule, checked separately.
    const double rate = std::exp(rng.uniform(std::log(3e6), std::log(1e12)));
    const double decoded = ft::decode_rate(ft::encode_rate(rate));
    EXPECT_NEAR(decoded, rate, rate * ft::kRateCodeMaxRelError * 2.01)
        << rate;
  }
  for (int i = 0; i < 1000; ++i) {
    const double rate = rng.uniform(1e3, 2e6);
    const double decoded = ft::decode_rate(ft::encode_rate(rate));
    EXPECT_NEAR(decoded, rate, 1e3) << rate;  // one 1 Kbit/s granule
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateCodeP, ::testing::Values(1, 2, 3, 4));

TEST(MessageFuzzTest, RoundTripRandomValues) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    FlowletStartMsg s;
    s.flow_key = static_cast<std::uint32_t>(rng.next());
    s.src_host = static_cast<std::uint16_t>(rng.next());
    s.dst_host = static_cast<std::uint16_t>(rng.next());
    s.size_hint_bytes = static_cast<std::uint32_t>(rng.next());
    s.weight_milli = static_cast<std::uint16_t>(rng.next());
    s.flags = static_cast<std::uint16_t>(rng.next());
    EXPECT_EQ(decode_flowlet_start(encode(s)), s);
    FlowletEndMsg e{static_cast<std::uint32_t>(rng.next())};
    EXPECT_EQ(decode_flowlet_end(encode(e)), e);
    RateUpdateMsg u{static_cast<std::uint32_t>(rng.next()),
                    static_cast<std::uint16_t>(rng.next())};
    EXPECT_EQ(decode_rate_update(encode(u)), u);
  }
}

}  // namespace
}  // namespace ft::core

namespace ft::sim {
namespace {

struct OrderChecker : EventHandler {
  Time last = -1;
  EventQueue* q = nullptr;
  std::size_t fired = 0;
  void on_event(std::uint32_t, std::uint64_t) override {
    EXPECT_GE(q->now(), last);
    last = q->now();
    ++fired;
  }
};

class EventOrderP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderP, RandomScheduleProcessesInTimeOrder) {
  EventQueue q;
  OrderChecker checker;
  checker.q = &q;
  Rng rng(GetParam());
  std::size_t scheduled = 0;
  for (int i = 0; i < 5000; ++i) {
    q.schedule(static_cast<Time>(rng.below(1'000'000)), &checker, 0);
    ++scheduled;
  }
  q.run_until(2'000'000);
  EXPECT_EQ(checker.fired, scheduled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderP,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace ft::sim
