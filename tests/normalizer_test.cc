// Tests for U-NORM / F-NORM (paper §4): feasibility guarantees, ratio
// preservation, scale-up behaviour, and the relative-throughput ordering
// behind Figure 13.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/exact.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/problem.h"

namespace ft::core {
namespace {

std::vector<LinkId> route(std::initializer_list<std::uint32_t> ids) {
  std::vector<LinkId> r;
  for (auto i : ids) r.emplace_back(i);
  return r;
}

std::vector<double> alloc_per_link(const NumProblem& p,
                                   std::span<const double> rates) {
  std::vector<double> alloc(p.num_links(), 0.0);
  for (FlowIndex s = 0; s < p.num_slots(); ++s) {
    if (!p.flow(s).active()) continue;
    for (std::uint32_t l : p.flow(s).route()) alloc[l] += rates[s];
  }
  return alloc;
}

TEST(NormalizerTest, LinkRatios) {
  NumProblem p({10e9, 20e9});
  p.add_flow(route({0, 1}), {});
  p.add_flow(route({1}), {});
  std::vector<double> rates{5e9, 10e9};
  std::vector<double> ratios(2);
  link_ratios(p, rates, ratios);
  EXPECT_DOUBLE_EQ(ratios[0], 0.5);
  EXPECT_DOUBLE_EQ(ratios[1], 0.75);
}

TEST(UNormTest, ScalesByMostCongestedLink) {
  NumProblem p({10e9, 10e9});
  p.add_flow(route({0}), {});
  p.add_flow(route({1}), {});
  std::vector<double> rates{20e9, 5e9};  // link0 at 2.0x, link1 at 0.5x
  std::vector<double> out(2);
  const double r_star = u_norm(p, rates, out);
  EXPECT_DOUBLE_EQ(r_star, 2.0);
  EXPECT_DOUBLE_EQ(out[0], 10e9);
  EXPECT_DOUBLE_EQ(out[1], 2.5e9);  // scaled down too (the U-NORM cost)
}

TEST(UNormTest, PreservesRelativeRates) {
  Rng rng(3);
  NumProblem p({10e9, 10e9, 10e9});
  for (int i = 0; i < 6; ++i) {
    p.add_flow(route({static_cast<std::uint32_t>(i % 3)}), {});
  }
  std::vector<double> rates(6), out(6);
  for (auto& r : rates) r = rng.uniform(1e9, 20e9);
  u_norm(p, rates, out);
  for (int i = 1; i < 6; ++i) {
    EXPECT_NEAR(out[i] / out[0], rates[i] / rates[0], 1e-12);
  }
}

TEST(FNormTest, NeverExceedsAnyCapacity) {
  // Property (paper §4.2): after F-NORM every link's aggregate is at most
  // its capacity -- even from wildly over-allocated inputs.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t links = 2 + rng.below(8);
    std::vector<double> caps;
    for (std::size_t l = 0; l < links; ++l) {
      caps.push_back(rng.uniform(1e9, 40e9));
    }
    NumProblem p(caps);
    const std::size_t flows = 1 + rng.below(30);
    for (std::size_t f = 0; f < flows; ++f) {
      std::vector<LinkId> r;
      const std::size_t hops = 1 + rng.below(std::min<std::size_t>(links, 4));
      std::size_t start = rng.below(links);
      for (std::size_t h = 0; h < hops; ++h) {
        const auto l =
            static_cast<std::uint32_t>((start + h) % links);
        r.emplace_back(l);
      }
      p.add_flow(r, {});
    }
    std::vector<double> rates(p.num_slots());
    for (auto& x : rates) x = rng.uniform(0.0, 80e9);
    std::vector<double> out(p.num_slots());
    f_norm(p, rates, out);
    const auto alloc = alloc_per_link(p, out);
    for (std::size_t l = 0; l < links; ++l) {
      EXPECT_LE(alloc[l], caps[l] * (1 + 1e-9)) << "seed " << seed;
    }
  }
}

TEST(FNormTest, ScalesUpUnderAllocatedFlows) {
  // A lone flow allocated half its bottleneck is scaled *up* to fill it
  // (§4.2 / §6.6: F-NORM occasionally slightly exceeds the optimal).
  NumProblem p({10e9});
  p.add_flow(route({0}), {});
  std::vector<double> rates{5e9}, out(1);
  f_norm(p, rates, out);
  EXPECT_DOUBLE_EQ(out[0], 10e9);
}

TEST(FNormTest, OnlyCongestedFlowsScaledDown) {
  // Two disjoint links: one over-allocated, one under. F-NORM fixes each
  // independently; U-NORM punishes both (the Figure 13 mechanism).
  NumProblem p({10e9, 10e9});
  p.add_flow(route({0}), {});
  p.add_flow(route({1}), {});
  std::vector<double> rates{20e9, 8e9};
  std::vector<double> f_out(2), u_out(2);
  f_norm(p, rates, f_out);
  u_norm(p, rates, u_out);
  EXPECT_DOUBLE_EQ(f_out[0], 10e9);
  EXPECT_DOUBLE_EQ(f_out[1], 10e9);  // scaled up to its own bottleneck
  EXPECT_DOUBLE_EQ(u_out[0], 10e9);
  EXPECT_DOUBLE_EQ(u_out[1], 4e9);   // collateral damage
  EXPECT_GT(f_out[0] + f_out[1], u_out[0] + u_out[1]);
}

TEST(FNormTest, ZeroAllocationKeepsRate) {
  // The division-by-zero case called out in §4: flows whose links carry
  // no aggregate allocation pass through unchanged.
  NumProblem p({10e9});
  p.add_flow(route({0}), {});
  std::vector<double> rates{0.0}, out(1);
  f_norm(p, rates, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(FNormTest, ThroughputNearOptimalDuringChurn) {
  // Mini Figure 13: run NED under churn; F-NORM throughput should stay
  // close to the converged optimum, and strictly dominate U-NORM.
  Rng rng(11);
  NumProblem p({10e9, 10e9, 10e9, 10e9});
  NedSolver ned(p);
  std::vector<FlowIndex> live;
  double f_total = 0, u_total = 0, opt_total = 0;
  int samples = 0;
  for (int step = 0; step < 400; ++step) {
    if (live.size() < 3 || rng.uniform() < 0.55) {
      const auto a = static_cast<std::uint32_t>(rng.below(4));
      const auto b = static_cast<std::uint32_t>(rng.below(4));
      live.push_back(
          p.add_flow(a == b ? route({a}) : route({a, b}), {}));
    } else {
      const auto pick = rng.below(live.size());
      p.remove_flow(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    for (int i = 0; i < 2; ++i) ned.iterate();
    if (step < 50) continue;  // warm-up
    std::vector<double> f_out(p.num_slots()), u_out(p.num_slots());
    f_norm(p, ned.rates(), f_out);
    u_norm(p, ned.rates(), u_out);
    // Converged reference on a copy of the same flow set.
    NumProblem ref({10e9, 10e9, 10e9, 10e9});
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      const FlowView f = p.flow(s);
      if (!f.active()) continue;
      std::vector<LinkId> r;
      for (std::uint32_t l : f.route()) r.emplace_back(l);
      ref.add_flow(r, f.util());
    }
    const ExactResult opt = solve_exact(ref);
    for (FlowIndex s = 0; s < p.num_slots(); ++s) {
      if (!p.flow(s).active()) continue;
      f_total += f_out[s];
      u_total += u_out[s];
    }
    opt_total += opt.total_rate;
    ++samples;
  }
  ASSERT_GT(samples, 100);
  EXPECT_GT(f_total / opt_total, 0.95);
  EXPECT_LT(u_total / opt_total, f_total / opt_total);
}

TEST(NormalizeDispatchTest, KindsRouteCorrectly) {
  NumProblem p({10e9});
  p.add_flow(route({0}), {});
  std::vector<double> rates{20e9}, out(1, 0.0);
  normalize(NormKind::kNone, p, rates, out);
  EXPECT_DOUBLE_EQ(out[0], 20e9);
  normalize(NormKind::kUniform, p, rates, out);
  EXPECT_DOUBLE_EQ(out[0], 10e9);
  normalize(NormKind::kPerFlow, p, rates, out);
  EXPECT_DOUBLE_EQ(out[0], 10e9);
}

}  // namespace
}  // namespace ft::core
