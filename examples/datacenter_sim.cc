// Datacenter workload comparison: runs the packet-level simulator on the
// paper's topology with the Facebook Web workload and prints
// p99-normalized flow completion times for Flowtune vs DCTCP -- a
// minature of the paper's headline result (Figure 8) -- then replays a
// slice of the same workload's packet trace through the *live* control
// plane: an EndpointAgent whose flowlet detector observes the packets
// (observe_packet, no manual flowlet_start/end) against a real
// AllocatorService over a Unix socket.
//
//   $ ./datacenter_sim            # defaults: load 0.6, 8 ms window
//   $ ./datacenter_sim 0.8 12     # load 0.8, 12 ms window
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "flowlet/detector.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/server.h"
#include "transport/experiment.h"
#include "workload/traffic_gen.h"

namespace {

// Replays `horizon` of the workload's packet trace through the
// detector-driven agent: every transmitted packet is observed, flowlet
// starts/ends are detected and notified, rate updates come back.
void live_control_plane_replay(double load, ft::Time horizon) {
  using namespace ft;
  topo::ClosTopology clos((topo::ClosConfig()));
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  core::Allocator alloc(caps, core::AllocatorConfig{});

  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.unix_path = "/tmp/flowtune_dcsim.sock";
  scfg.iteration_period_us = 0;
  net::AllocatorService svc(loop, alloc, clos, scfg);

  // Detector floors sized for wall-clock replay: the scheduling jitter
  // of a paced replay loop is far coarser than simulated pacing, so the
  // adaptive gap gets a floor above it (still well under the scaled
  // think gaps).
  flowlet::DynamicGapConfig dcfg;
  dcfg.min_gap = 500 * kMicrosecond;
  dcfg.initial_gap = 500 * kMicrosecond;
  dcfg.max_gap = 20 * kMillisecond;
  net::EndpointAgent agent(
      net::AgentConfig{},
      std::make_unique<flowlet::DynamicGapDetector>(dcfg));
  if (!agent.connect_unix(scfg.unix_path)) {
    std::fprintf(stderr, "live replay: connect failed\n");
    return;
  }

  wl::TrafficConfig tcfg;
  tcfg.num_hosts = clos.num_hosts();
  tcfg.load = load;
  tcfg.workload = wl::Workload::kWeb;
  tcfg.seed = 11;
  wl::PacketTraceGenerator gen(tcfg);
  const wl::PacketTrace trace = gen.generate(horizon);

  // Pace the replay by the trace's own timestamps, stretched by `slow`
  // so the burst/think-gap structure lands well above wall-clock
  // jitter: the agent's detector stamps packets with real time, so
  // honouring ev.at is what lets it see the workload's flowlet
  // boundaries.
  const double slow = 20.0;
  std::uint64_t max_active = 0;
  const std::int64_t wall0 = net::EpollLoop::now_us();
  std::int64_t next_round_us = wall0;
  for (const wl::PacketEvent& ev : trace.packets) {
    const std::int64_t due_us =
        wall0 + static_cast<std::int64_t>(
                    slow * static_cast<double>(ev.at / kMicrosecond));
    while (net::EpollLoop::now_us() < due_us) {
      agent.poll();
      loop.run_once(0);
      const std::int64_t now = net::EpollLoop::now_us();
      if (now >= next_round_us) {
        svc.run_allocation_round();
        next_round_us = now + 200;
        max_active = std::max<std::uint64_t>(
            max_active, alloc.num_active_flowlets());
      }
    }
    agent.observe_packet(ev.flow_id,
                         static_cast<std::uint16_t>(ev.src_host),
                         static_cast<std::uint16_t>(ev.dst_host),
                         static_cast<std::uint32_t>(ev.bytes));
  }
  for (int i = 0; i < 20; ++i) {
    agent.poll();
    loop.run_once(0);
    svc.run_allocation_round();
  }

  const auto& as = agent.stats();
  const auto ss = svc.stats();
  std::printf(
      "\nLive control plane replay (web load %.1f, %zu packets, %zu "
      "ground-truth flowlets):\n"
      "  detector-driven flowlet starts: %llu, idle ends: %llu\n"
      "  service registrations: %llu starts / %llu ends, peak %llu "
      "active\n"
      "  rate updates applied at the endpoint: %llu\n",
      load, trace.packets.size(), trace.bursts,
      static_cast<unsigned long long>(as.starts_sent),
      static_cast<unsigned long long>(as.idle_ends),
      static_cast<unsigned long long>(ss.flowlet_starts),
      static_cast<unsigned long long>(ss.flowlet_ends),
      static_cast<unsigned long long>(max_active),
      static_cast<unsigned long long>(as.updates_received));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::transport;

  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  const double ms = argc > 2 ? std::atof(argv[2]) : 8.0;

  std::printf("Web workload at load %.1f on the paper's 144-server Clos "
              "(%.0f ms measured)...\n\n",
              load, ms);

  ExpResult results[2];
  const Scheme schemes[] = {Scheme::kFlowtune, Scheme::kDctcp};
  for (int i = 0; i < 2; ++i) {
    ExpConfig cfg;
    cfg.scheme = schemes[i];
    cfg.traffic.load = load;
    cfg.traffic.workload = wl::Workload::kWeb;
    cfg.duration = from_ms(ms);
    results[i] = run_experiment(cfg);
  }

  std::printf("%-22s %12s %12s\n", "p99 normalized FCT", "Flowtune",
              "DCTCP");
  for (std::int32_t b = 0; b < wl::kNumSizeBuckets; ++b) {
    std::printf("%-22s %12.2f %12.2f\n",
                wl::size_bucket_name(static_cast<wl::SizeBucket>(b)),
                results[0].buckets[b].p99_norm_fct,
                results[1].buckets[b].p99_norm_fct);
  }
  std::printf("\n%-22s %12.2f %12.2f\n", "p99 4-hop queueing (us)",
              results[0].p99_queue_4hop_us, results[1].p99_queue_4hop_us);
  std::printf("%-22s %12.2f %12.2f\n", "dropped Gbit/s",
              results[0].dropped_gbps, results[1].dropped_gbps);
  std::printf("%-22s %12zu %12zu\n", "flows completed",
              results[0].flows_completed, results[1].flows_completed);
  std::printf("\nFlowtune control overhead: %.3f%% of network capacity\n",
              100 * (results[0].to_allocator_gbps +
                     results[0].from_allocator_gbps) /
                  (144 * 10.0));

  live_control_plane_replay(load, from_ms(2));
  return 0;
}
