// Datacenter workload comparison: runs the packet-level simulator on the
// paper's topology with the Facebook Web workload and prints
// p99-normalized flow completion times for Flowtune vs DCTCP -- a
// minature of the paper's headline result (Figure 8).
//
//   $ ./datacenter_sim            # defaults: load 0.6, 8 ms window
//   $ ./datacenter_sim 0.8 12     # load 0.8, 12 ms window
#include <cstdio>
#include <cstdlib>

#include "transport/experiment.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::transport;

  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  const double ms = argc > 2 ? std::atof(argv[2]) : 8.0;

  std::printf("Web workload at load %.1f on the paper's 144-server Clos "
              "(%.0f ms measured)...\n\n",
              load, ms);

  ExpResult results[2];
  const Scheme schemes[] = {Scheme::kFlowtune, Scheme::kDctcp};
  for (int i = 0; i < 2; ++i) {
    ExpConfig cfg;
    cfg.scheme = schemes[i];
    cfg.traffic.load = load;
    cfg.traffic.workload = wl::Workload::kWeb;
    cfg.duration = from_ms(ms);
    results[i] = run_experiment(cfg);
  }

  std::printf("%-22s %12s %12s\n", "p99 normalized FCT", "Flowtune",
              "DCTCP");
  for (std::int32_t b = 0; b < wl::kNumSizeBuckets; ++b) {
    std::printf("%-22s %12.2f %12.2f\n",
                wl::size_bucket_name(static_cast<wl::SizeBucket>(b)),
                results[0].buckets[b].p99_norm_fct,
                results[1].buckets[b].p99_norm_fct);
  }
  std::printf("\n%-22s %12.2f %12.2f\n", "p99 4-hop queueing (us)",
              results[0].p99_queue_4hop_us, results[1].p99_queue_4hop_us);
  std::printf("%-22s %12.2f %12.2f\n", "dropped Gbit/s",
              results[0].dropped_gbps, results[1].dropped_gbps);
  std::printf("%-22s %12zu %12zu\n", "flows completed",
              results[0].flows_completed, results[1].flows_completed);
  std::printf("\nFlowtune control overhead: %.3f%% of network capacity\n",
              100 * (results[0].to_allocator_gbps +
                     results[0].from_allocator_gbps) /
                  (144 * 10.0));
  return 0;
}
