// Quickstart: the Flowtune control plane in ~90 lines.
//
// Builds the paper's 2-tier Clos topology, starts the allocator as a
// real service on a Unix-domain socket, and connects one endpoint agent
// that is never told about flowlets explicitly: it *observes
// transmitted packets* (EndpointAgent::observe_packet) and its flowlet
// detector registers starts -- and, after the idle gap, ends -- with
// the allocator automatically. Rate updates flow back over the socket.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/flowtune.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/server.h"
#include "topo/clos.h"

int main() {
  using namespace ft;

  // The paper's simulated datacenter: 9 racks x 16 servers, 4 spines,
  // 10 Gbit/s host links (topo::ClosConfig defaults).
  topo::ClosTopology clos((topo::ClosConfig()));

  std::vector<double> capacities;
  for (const auto& link : clos.graph().links()) {
    capacities.push_back(link.capacity_bps);
  }

  // Allocator with the paper's parameters: gamma = 0.4, notification
  // threshold 0.01 (reserves 1% capacity headroom), F-NORM.
  core::AllocatorConfig config;
  config.gamma = 0.4;
  config.threshold = 0.01;
  core::Allocator allocator(capacities, config);

  // The allocator as a service (epoll + Unix socket), rounds driven
  // manually below so the demo stays single-threaded.
  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.unix_path = "/tmp/flowtune_quickstart.sock";
  scfg.iteration_period_us = 0;
  net::AllocatorService service(loop, allocator, clos, scfg);

  // The endpoint agent with a 50 ms idle-gap flowlet detector: no
  // flowlet_start calls anywhere -- observe_packet drives the whole
  // lifecycle.
  net::AgentConfig acfg;
  acfg.idle_gap_us = 50'000;
  net::EndpointAgent agent(acfg);
  if (!agent.connect_unix(scfg.unix_path)) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  // Three flows: two share host 0's uplink; one is alone.
  struct Demo {
    std::uint32_t key;
    std::uint16_t src, dst;
  };
  const Demo demos[] = {{1, 0, 20}, {2, 0, 40}, {3, 17, 100}};

  // "Send" traffic: each observed packet feeds the detector, which
  // auto-registers the flowlet on its first packet; then run allocation
  // rounds (one every 10 us in deployment) and pump the socket.
  for (int iter = 0; iter < 50; ++iter) {
    for (const Demo& d : demos) {
      agent.observe_packet(d.key, d.src, d.dst, 1500);
    }
    agent.poll();
    loop.run_once(0);
    service.run_allocation_round();
    loop.run_once(0);
    agent.poll();
  }

  std::printf("detected flowlet starts sent: %llu (no explicit "
              "flowlet_start calls)\n\nsteady state:\n",
              static_cast<unsigned long long>(agent.stats().starts_sent));
  for (const Demo& d : demos) {
    std::printf("  flow %u (host %u -> host %u): %.3f Gbit/s\n", d.key,
                d.src, d.dst, agent.rate_bps(d.key) / 1e9);
  }
  std::printf(
      "\nFlows 1 and 2 share host 0's 10G uplink (~4.95G each after the "
      "1%% headroom);\nflow 3 gets the full ~9.9G.\n");

  // Silence: the agent's idle sweep ends every flowlet without any
  // flowlet_end call either.
  const std::int64_t deadline = net::EpollLoop::now_us() + 2'000'000;
  while (allocator.num_active_flowlets() > 0 &&
         net::EpollLoop::now_us() < deadline) {
    agent.poll();
    loop.run_once(1'000);
  }
  std::printf("\nafter %ld ms of silence: %zu active flowlets "
              "(idle ends sent: %llu)\n",
              static_cast<long>(acfg.idle_gap_us / 1000),
              allocator.num_active_flowlets(),
              static_cast<unsigned long long>(agent.stats().idle_ends));
  return 0;
}
