// Quickstart: the Flowtune core API in ~60 lines.
//
// Builds the paper's 2-tier Clos topology, registers a handful of
// flowlets with the centralized allocator, runs 10 us allocation
// iterations (NED + F-NORM), and prints the rate updates the allocator
// would push to endpoints.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/flowtune.h"
#include "topo/clos.h"

int main() {
  using namespace ft;

  // The paper's simulated datacenter: 9 racks x 16 servers, 4 spines,
  // 10 Gbit/s host links (topo::ClosConfig defaults).
  topo::ClosTopology clos((topo::ClosConfig()));

  std::vector<double> capacities;
  for (const auto& link : clos.graph().links()) {
    capacities.push_back(link.capacity_bps);
  }

  // Allocator with the paper's parameters: gamma = 0.4, notification
  // threshold 0.01 (reserves 1% capacity headroom), F-NORM.
  core::AllocatorConfig config;
  config.gamma = 0.4;
  config.threshold = 0.01;
  core::Allocator allocator(capacities, config);

  // Three flowlets: two share host 0's uplink; one is alone.
  struct Demo {
    std::uint64_t key;
    std::int32_t src, dst;
  };
  const Demo demos[] = {{1, 0, 20}, {2, 0, 40}, {3, 17, 100}};
  for (const Demo& d : demos) {
    const topo::Path path =
        clos.host_path(clos.host(d.src), clos.host(d.dst), d.key);
    std::vector<LinkId> route(path.begin(), path.end());
    allocator.flowlet_start(d.key, route);
  }

  // Run allocation iterations (one every 10 us in deployment) and print
  // the resulting rate updates.
  std::vector<core::RateUpdate> updates;
  for (int iter = 0; iter < 50; ++iter) {
    updates.clear();
    allocator.run_iteration(updates);
    for (const core::RateUpdate& u : updates) {
      std::printf("iter %2d: flow %llu -> %7.3f Gbit/s (code 0x%04x)\n",
                  iter, static_cast<unsigned long long>(u.key),
                  u.rate_bps / 1e9, u.rate_code);
    }
  }

  std::printf("\nsteady state:\n");
  for (const Demo& d : demos) {
    std::printf("  flow %llu (host %d -> host %d): %.3f Gbit/s\n",
                static_cast<unsigned long long>(d.key), d.src, d.dst,
                allocator.notified_rate(d.key) / 1e9);
  }
  std::printf(
      "\nFlows 1 and 2 share host 0's 10G uplink (~4.95G each after the "
      "1%% headroom);\nflow 3 gets the full ~9.9G.\n");
  return 0;
}
