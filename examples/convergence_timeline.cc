// Flowlet-control convergence, visualized: three flows join and leave a
// shared bottleneck while the allocator re-optimizes; the timeline shows
// allocations converging within a few 10 us iterations of every change
// (the paper's core claim, §1: rates change only when flowlets start or
// end -- and get re-optimized immediately when they do).
//
//   $ ./convergence_timeline
#include <cstdio>
#include <vector>

#include "core/flowtune.h"
#include "topo/clos.h"

int main() {
  using namespace ft;

  topo::ClosConfig tcfg;
  tcfg.racks = 2;
  tcfg.servers_per_rack = 4;
  tcfg.spines = 2;
  tcfg.fabric_link_bps = 20e9;
  topo::ClosTopology clos(tcfg);
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);

  core::AllocatorConfig acfg;
  acfg.gamma = 0.4;
  core::Allocator alloc(caps, acfg);

  const auto route = [&](std::uint64_t key, int src, int dst) {
    const auto p = clos.host_path(clos.host(src), clos.host(dst), key);
    return std::vector<LinkId>(p.begin(), p.end());
  };

  std::vector<core::RateUpdate> updates;
  const auto run = [&](int iters) {
    for (int i = 0; i < iters; ++i) {
      updates.clear();
      alloc.run_iteration(updates);
    }
  };
  const auto show = [&](const char* event) {
    std::printf("%-34s", event);
    for (std::uint64_t k = 1; k <= 3; ++k) {
      if (alloc.is_active(k)) {
        std::printf("  f%llu=%5.2fG", static_cast<unsigned long long>(k),
                    alloc.notified_rate(k) / 1e9);
      } else {
        std::printf("  f%llu=  -  ", static_cast<unsigned long long>(k));
      }
    }
    std::printf("\n");
  };

  std::printf("All flows target host 7; its 10G downlink is the shared "
              "bottleneck.\n(t in allocator iterations; 1 iteration = "
              "10 us)\n\n");

  alloc.flowlet_start(1, route(1, 0, 7));
  run(30);
  show("t=30: flowlet 1 active");

  alloc.flowlet_start(2, route(2, 1, 7));
  run(5);
  show("t=35: flowlet 2 joins (+5 iters)");
  run(25);
  show("t=60: converged");

  alloc.flowlet_start(3, route(3, 4, 7));
  run(5);
  show("t=65: flowlet 3 joins (+5 iters)");
  run(25);
  show("t=90: converged");

  alloc.flowlet_end(2);
  run(5);
  show("t=95: flowlet 2 ends (+5 iters)");
  run(25);
  show("t=120: converged");

  alloc.flowlet_end(3);
  run(30);
  show("t=150: flowlet 3 ends");

  std::printf(
      "\nEach change re-converges within a handful of 10 us iterations "
      "-- versus tens of RTTs for distributed congestion control.\n");
  return 0;
}
