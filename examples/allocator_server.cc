// Standalone multicore allocator loop: what the Flowtune allocator
// process does in production. Builds a 1536-server pod, spins up the
// partitioned NED+F-NORM engine (§5) across 64 FlowBlocks, replays a
// flowlet event stream against it, and reports per-iteration latency
// percentiles -- the numbers behind the paper's §6.1 table.
//
//   $ ./allocator_server             # 8 blocks, 20k flows, 2000 iters
//   $ ./allocator_server 4 50000     # 4 blocks, 50k flows
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "core/flowtune.h"
#include "topo/clos.h"
#include "topo/partition.h"

int main(int argc, char** argv) {
  using namespace ft;

  const std::int32_t blocks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::int32_t target_flows = argc > 2 ? std::atoi(argv[2]) : 20000;
  const std::int32_t iters = 2000;

  topo::ClosConfig tcfg;
  tcfg.racks = 96;  // 1536 servers
  tcfg.servers_per_rack = 16;
  tcfg.spines = 4;
  topo::ClosTopology clos(tcfg);
  const auto part = topo::BlockPartition::make(clos, blocks);

  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  core::NumProblem problem(caps);

  core::ParallelConfig pcfg;
  pcfg.num_blocks = blocks;
  core::ParallelNed engine(problem, part, pcfg);
  std::printf("%d FlowBlocks on %d threads, %zu links, %d servers\n",
              blocks * blocks, engine.num_threads(),
              problem.num_links(), clos.num_hosts());

  // Seed the pod with random flows, then run iterations with churn:
  // every iteration a handful of flowlets start and end, as they would
  // arrive from endpoint notifications.
  Rng rng(7);
  const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
  std::vector<core::FlowIndex> live;
  const auto add_flow = [&] {
    const auto s = static_cast<std::int32_t>(rng.below(hosts));
    auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
    if (d >= s) ++d;
    const auto path = clos.host_path(clos.host(s), clos.host(d), rng.next());
    std::vector<LinkId> route(path.begin(), path.end());
    const core::FlowIndex idx =
        problem.add_flow(route, core::Utility::log_utility());
    engine.assign_flow(idx, part.block_of_host(clos, clos.host(s)),
                       part.block_of_host(clos, clos.host(d)));
    live.push_back(idx);
  };
  for (std::int32_t i = 0; i < target_flows; ++i) add_flow();

  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(iters));
  double total_alloc_tbps = 0.0;
  for (std::int32_t it = 0; it < iters; ++it) {
    // Churn: ~4 flowlet events per 10 us iteration.
    for (int e = 0; e < 2; ++e) {
      const auto pick = rng.below(live.size());
      engine.unassign_flow(live[pick]);
      problem.remove_flow(live[pick]);
      live[pick] = live.back();
      live.pop_back();
      add_flow();
    }
    engine.iterate();
    us.push_back(engine.last_iter_seconds() * 1e6);
    if (it == iters - 1) {
      for (core::FlowIndex f : live) {
        total_alloc_tbps += engine.norm_rates()[f] / 1e12;
      }
    }
  }
  std::sort(us.begin(), us.end());
  const auto pct = [&](double q) {
    return us[static_cast<std::size_t>(q * (us.size() - 1))];
  };
  std::printf("\n%d iterations over %zu flows:\n", iters, live.size());
  std::printf("  per-iteration latency: p50 %.1f us  p90 %.1f us  p99 %.1f us\n",
              pct(0.50), pct(0.90), pct(0.99));
  std::printf("  allocated throughput (F-NORM): %.2f Tbit/s\n",
              total_alloc_tbps);
  std::printf(
      "\nPaper (§6.1, 80-core machine): 64 FlowBlocks allocate 1536 "
      "nodes / 49k flows in 16.9 us per iteration.\n");
  return 0;
}
