// The Flowtune allocator as a standalone daemon: the production shape of
// §6.2/§7. Endpoint agents (net::EndpointAgent) connect over TCP or a
// Unix-domain socket, send flowlet start/end notifications, and receive
// batched rate updates as the epoll-driven service runs the NED+F-NORM
// iteration on its timer.
//
//   $ ./allocator_server --port=9090
//   $ ./allocator_server --unix=/tmp/flowtune.sock --period-us=100
//
// Flowlet churn is handled through the allocator's key->slot map (slots
// are recycled by NumProblem's free list, so wire-level flow keys -- not
// slot indices -- are the only stable handle; the pre-daemon version of
// this example tracked raw FlowIndex values and could double-free a
// recycled slot).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/allocator.h"
#include "core/backend.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_socket.h"
#include "obs/trace.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

ft::net::EpollLoop* g_loop = nullptr;

void handle_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ft;

  bench::Flags flags(argc, argv);
  topo::ClosConfig tcfg;
  tcfg.racks = static_cast<std::int32_t>(
      flags.int_flag("racks", 9, "Clos racks"));
  tcfg.servers_per_rack = static_cast<std::int32_t>(
      flags.int_flag("servers", 16, "servers per rack"));
  tcfg.spines = static_cast<std::int32_t>(
      flags.int_flag("spines", 4, "Clos spines"));

  core::AllocatorConfig acfg;
  acfg.gamma = flags.double_flag("gamma", acfg.gamma, "NED step size");
  acfg.threshold = flags.double_flag("threshold", acfg.threshold,
                                     "notification threshold");

  net::ServerConfig scfg;
  scfg.tcp_port = static_cast<int>(
      flags.int_flag("port", 9090, "TCP listen port (-1 disables)"));
  scfg.unix_path =
      flags.string_flag("unix", "", "Unix-domain socket path");
  scfg.iteration_period_us = flags.int_flag(
      "period-us", 100, "allocation round period (us)");
  scfg.num_shards = static_cast<int>(flags.int_flag(
      "shards", 0, "I/O shard threads (0 = single-threaded service)"));
  const auto alloc_threads = flags.int_flag(
      "alloc-threads", 0,
      "ParallelNed solver threads (0 = sequential NED backend)");
  auto blocks = static_cast<std::int32_t>(flags.int_flag(
      "blocks", 0,
      "FlowBlock grid side for --alloc-threads (power of two; 0 = "
      "largest fitting the rack count)"));
  const bool pin_cores = flags.bool_flag(
      "pin-cores", false,
      "pin ParallelNed workers by FlowBlock row and co-schedule I/O "
      "shards onto the same cores (§6.1); defaults shards to one per "
      "block row");
  const auto pin_cpus = flags.string_flag(
      "pin-cpus", "",
      "explicit CPU list for --pin-cores (comma-separated; empty = all "
      "online CPUs)");
  const bool numa_interleave = flags.bool_flag(
      "numa-interleave", false,
      "spread block rows round-robin across NUMA nodes when pinning");
  const auto stats_sec =
      flags.double_flag("stats-sec", 5, "stats print interval (s)");
  const auto stats_socket_path = flags.string_flag(
      "stats-socket", "",
      "live stats plane: Unix socket serving metric snapshots "
      "(echo json|prom|trace|flight | nc -U <path>)");
  const auto stats_interval = flags.double_flag(
      "stats-interval", 0,
      "periodic JSON metrics snapshot interval (s; 0 disables)");
  const auto stats_file = flags.string_flag(
      "stats-file", "",
      "write --stats-interval snapshots here (overwritten each time) "
      "instead of stderr");
  const auto trace_out = flags.string_flag(
      "trace-out", "",
      "enable phase tracing and dump chrome://tracing JSON here on "
      "shutdown");
  const auto flight_out = flags.string_flag(
      "flight-out", "",
      "auto-flush the flight recorder (per-round black box) here on "
      "shutdown; it is always live via `echo flight | nc -U "
      "<stats-socket>`");
  const auto stall_every = flags.int_flag(
      "stall-every-rounds", 0,
      "fault injection: busy-spin --stall-us inside every Nth round's "
      "fanout phase (flight-recorder demos; 0 disables)");
  const auto stall_us =
      flags.int_flag("stall-us", 0, "stall length for --stall-every-rounds");
  scfg.heartbeat_period_us = flags.int_flag(
      "heartbeat-period-us", 0,
      "service->agent heartbeat period carrying the rate lease "
      "(0 disables liveness beacons)");
  scfg.rate_lease_us = flags.int_flag(
      "rate-lease-us", 0,
      "rate lease advertised on heartbeats: agents that hear nothing "
      "for this long decay to their fallback rate (0 = no lease)");
  scfg.peer_timeout_us = flags.int_flag(
      "peer-timeout-us", 0,
      "cull connections silent for this long, freeing their flows "
      "(agents should heartbeat at a fraction of this; 0 disables)");
  flags.done(
      "Flowtune allocator daemon: serves endpoint agents over TCP/Unix "
      "sockets, runs the NED+F-NORM round every --period-us. "
      "--shards spreads connection I/O over N epoll threads behind one "
      "listener; --alloc-threads runs the §5 multicore allocation "
      "backend; --pin-cores applies the §6.1 block-row -> CPU mapping "
      "to both.");

  topo::ClosTopology clos(tcfg);
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  if (blocks <= 0) blocks = topo::BlockPartition::default_blocks(clos);

  core::CpuMapConfig pin;
  // An explicit CPU list or NUMA layout is an unambiguous request to
  // pin: honor it rather than silently ignoring the flags without
  // --pin-cores.
  pin.enable = pin_cores || !pin_cpus.empty() || numa_interleave;
  if (pin.enable && !pin_cores) {
    std::fprintf(stderr,
                 "note: --pin-cpus/--numa-interleave imply --pin-cores\n");
  }
  pin.numa_interleave = numa_interleave;
  if (!core::CpuMap::parse_cpulist(pin_cpus, pin.cpus)) {
    std::fprintf(stderr, "bad --pin-cpus list: '%s' (cpulist syntax, "
                         "e.g. 0-3,8,10-11)\n",
                 pin_cpus.c_str());
    return 2;
  }
  {
    // Validate against the actual online CPU ids from sysfs (ids can be
    // sparse, and hardware_concurrency is a cgroup-clamped count, not a
    // max id).
    std::vector<int> online;
    for (const auto& node : core::CpuMap::numa_nodes()) {
      online.insert(online.end(), node.begin(), node.end());
    }
    for (const int cpu : pin.cpus) {
      if (std::find(online.begin(), online.end(), cpu) == online.end()) {
        std::fprintf(stderr,
                     "warning: --pin-cpus %d is not an online CPU; "
                     "pinning to it will be ignored\n",
                     cpu);
      }
    }
  }
  if (pin.enable && scfg.num_shards == 0) {
    // §6.1 co-scheduling default: one I/O shard per FlowBlock row,
    // sharing that row's core with its ParallelNed worker.
    scfg.num_shards = static_cast<int>(blocks);
  }
  scfg.pin = pin;

  // One shared registry for the whole daemon: core.* (allocator +
  // backend), net.* (service shards), svc.* (round phases) all land in
  // the same snapshot the stats plane serves.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  acfg.metrics = &reg;
  scfg.metrics = &reg;
  scfg.stall_every_rounds = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, stall_every));
  scfg.stall_us = stall_us;
  if (!trace_out.empty()) obs::PhaseTracer::set_enabled(true);

  std::unique_ptr<core::Allocator> alloc_holder;
  if (alloc_threads > 0) {
    core::ParallelConfig pcfg;
    pcfg.num_threads = static_cast<std::int32_t>(alloc_threads);
    pcfg.pin = pin;
    alloc_holder = std::make_unique<core::Allocator>(
        std::move(caps), acfg,
        core::parallel_backend(topo::BlockPartition::make(clos, blocks),
                               pcfg));
  } else {
    alloc_holder = std::make_unique<core::Allocator>(std::move(caps),
                                                     acfg);
  }
  core::Allocator& alloc = *alloc_holder;

  if (scfg.tcp_port < 0 && scfg.unix_path.empty()) {
    std::fprintf(stderr, "need --port or --unix (see --help)\n");
    return 1;
  }

  net::EpollLoop loop;
  loop.bind_metrics(reg, "net.alloc");
  net::AllocatorService svc(loop, alloc, clos, scfg);
  std::unique_ptr<obs::StatsSocket> stats_socket;
  if (!stats_socket_path.empty()) {
    stats_socket =
        std::make_unique<obs::StatsSocket>(loop, stats_socket_path, reg);
    stats_socket->set_flight(&svc.flight());
  }
  g_loop = &loop;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("flowtune allocator daemon: %d hosts, %zu links, "
              "%s backend, %d I/O shard(s)\n",
              clos.num_hosts(), alloc.problem().num_links(),
              alloc.backend().name(),
              svc.num_shards() > 0 ? svc.num_shards() : 1);
  if (!svc.pinning().empty()) {
    std::printf("  pinned shard->cpu layout: %s (one shard per block "
                "row)\n",
                svc.pinning().c_str());
  }
  if (svc.tcp_port() >= 0) {
    std::printf("  tcp   127.0.0.1:%d\n", svc.tcp_port());
  }
  if (!svc.unix_path().empty()) {
    std::printf("  unix  %s\n", svc.unix_path().c_str());
  }
  std::printf("  round period %lld us, gamma %.2f, threshold %.3f\n",
              static_cast<long long>(scfg.iteration_period_us), acfg.gamma,
              acfg.threshold);

  if (stats_socket != nullptr) {
    std::printf("  stats %s\n", stats_socket_path.c_str());
  }

  const auto snap_period_us =
      static_cast<std::int64_t>(stats_interval * 1e6);
  if (snap_period_us > 0) {
    loop.add_periodic(snap_period_us, [&] {
      const std::string doc = obs::to_json(reg);
      if (stats_file.empty()) {
        std::fwrite(doc.data(), 1, doc.size(), stderr);
        std::fputc('\n', stderr);
      } else if (std::FILE* f = std::fopen(stats_file.c_str(), "w")) {
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    });
  }

  const auto stats_period_us = static_cast<std::int64_t>(stats_sec * 1e6);
  if (stats_period_us > 0) {
    loop.add_periodic(stats_period_us, [&] {
      const auto& s = svc.stats();
      std::printf(
          "[stats] conns=%zu flows=%zu starts=%llu ends=%llu "
          "iters=%llu updates=%llu (coalesced %llu) out=%lld B "
          "(wire %lld B) in=%lld B\n",
          svc.num_connections(), alloc.num_active_flowlets(),
          static_cast<unsigned long long>(s.flowlet_starts),
          static_cast<unsigned long long>(s.flowlet_ends),
          static_cast<unsigned long long>(s.iterations),
          static_cast<unsigned long long>(s.updates_sent),
          static_cast<unsigned long long>(s.updates_coalesced),
          static_cast<long long>(s.bytes_out),
          static_cast<long long>(s.wire_bytes_out),
          static_cast<long long>(s.bytes_in));
      std::fflush(stdout);
    });
  }

  loop.run();
  if (!flight_out.empty()) {
    if (svc.flight().dump_to_file(flight_out)) {
      std::printf("flight recorder dump written to %s (%llu rounds, "
                  "%llu promoted)\n",
                  flight_out.c_str(),
                  static_cast<unsigned long long>(
                      svc.flight().rounds_seen()),
                  static_cast<unsigned long long>(svc.flight().promoted()));
    } else {
      std::fprintf(stderr, "failed to write flight dump to %s\n",
                   flight_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    if (obs::PhaseTracer::dump_json(trace_out)) {
      std::printf("phase trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
    }
  }
  std::printf("shutting down: %llu flowlet starts, %llu iterations\n",
              static_cast<unsigned long long>(svc.stats().flowlet_starts),
              static_cast<unsigned long long>(svc.stats().iterations));
  return 0;
}
